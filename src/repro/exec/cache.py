"""Content-addressed result cache for campaign points.

A campaign point is identified by a **stable content hash** of everything
that determines its result: the task reference and version, the merged
parameter dict (canonicalised, so dict insertion order never matters), and
the point's seed.  Parameters may contain numbers, strings, booleans,
``None``, (nested) lists/tuples/dicts, numpy scalars and arrays, and any
object exposing a ``fingerprint()`` method — in particular
:class:`~repro.core.circuit.QuditCircuit`, whose fingerprint covers its
exact gate/Kraus bytes.  Hashing uses :mod:`hashlib` only (never Python's
per-process-salted ``hash``), so keys are identical across worker
processes, sessions, and machines.

The on-disk layout is one JSON file per key, sharded by the key's first
two hex characters.  Writes are atomic (temp file + ``os.replace``) so a
crashed or killed worker can never leave a *truncated* entry behind — and
if one ever appears anyway (e.g. a torn copy), unreadable entries are
treated as misses and quietly evicted.  *Removals* follow the same
discipline in reverse: an entry is atomically renamed aside before it is
unlinked, and a conditional removal (the corrupt-entry heal path) first
re-validates the renamed file — so racing a concurrent ``put`` can never
destroy a freshly-written good entry.

A long-lived cache can be bounded with ``max_bytes`` / ``max_entries``:
hits touch the entry's mtime (an access-time stamp), and :meth:`evict`
removes least-recently-accessed entries until the cache fits its caps.
Eviction runs opportunistically every ``evict_interval`` writes, so a
campaign loop never needs to manage the cache's size explicitly.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import tempfile
import time
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from ..core.exceptions import SimulationError
from ..obs import metrics as _metrics
from ..obs.ledger import LEDGER_FILENAME, RunLedger

__all__ = ["stable_hash", "point_key", "ResultCache", "MISS"]

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


def _feed(hasher: "hashlib._Hash", obj: object) -> None:
    """Feed one object's canonical encoding into a hash object.

    Every value is prefixed with a type tag so values of different types
    can never collide (``1`` vs ``1.0`` vs ``"1"``), and containers are
    length-prefixed so concatenations can't alias.
    """
    if obj is None:
        hasher.update(b"N;")
    elif isinstance(obj, (bool, np.bool_)):
        hasher.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, (int, np.integer)):
        hasher.update(f"i{int(obj)};".encode())
    elif isinstance(obj, (float, np.floating)):
        # float.hex() is exact and locale/platform independent.
        hasher.update(f"f{float(obj).hex()};".encode())
    elif isinstance(obj, (complex, np.complexfloating)):
        obj = complex(obj)
        hasher.update(f"c{obj.real.hex()},{obj.imag.hex()};".encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        hasher.update(f"s{len(raw)}:".encode())
        hasher.update(raw)
    elif isinstance(obj, bytes):
        hasher.update(f"y{len(obj)}:".encode())
        hasher.update(obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype == object:
            # tobytes() on an object array serialises raw pointers —
            # different in every process, which would silently break both
            # cache hits and the serial==parallel seed guarantee.
            raise SimulationError(
                "cannot stably hash an object-dtype numpy array — use a "
                "list (or a homogeneous numeric array) instead"
            )
        arr = np.ascontiguousarray(obj)
        hasher.update(f"a{arr.dtype.str}{arr.shape};".encode())
        hasher.update(arr.tobytes())
    elif isinstance(obj, Mapping):
        # Canonical order: items sorted by the digest of their key, so any
        # insertion order (and any hashable key type) yields one encoding.
        items = sorted(obj.items(), key=lambda item: stable_hash(item[0]))
        hasher.update(f"d{len(items)}:".encode())
        for key, value in items:
            _feed(hasher, key)
            _feed(hasher, value)
    elif isinstance(obj, (list, tuple)) or (
        isinstance(obj, Sequence) and not isinstance(obj, (str, bytes))
    ):
        hasher.update(f"l{len(obj)}:".encode())
        for item in obj:
            _feed(hasher, item)
    elif hasattr(obj, "fingerprint") and callable(obj.fingerprint):
        hasher.update(f"F{type(obj).__name__}:".encode())
        _feed(hasher, obj.fingerprint())
    else:
        raise SimulationError(
            f"cannot stably hash {type(obj).__name__!r} — campaign "
            f"parameters must be JSON-like values, numpy data, or objects "
            f"with a fingerprint() method"
        )


def stable_hash(obj: object) -> str:
    """Process-independent SHA-256 hex digest of a parameter-like value."""
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.hexdigest()


def point_key(
    task: str, version: str, params: Mapping[str, Any], seed: int | None
) -> str:
    """Cache key of one campaign point.

    Covers the task's identity and version, every parameter (order-
    independently), and the seed — so the key changes whenever the
    circuit content, backend caps, parameter values, or seed change, and
    *only* then.
    """
    return stable_hash(
        {"task": task, "version": version, "params": dict(params), "seed": seed}
    )


#: Unique per-process suffix stream for rename-aside tombstones.
_TOMB_COUNTER = itertools.count()


#: Age after which an orphaned dot-file (an atomic-write temp or a
#: rename-aside tombstone left by a crash mid-removal) is swept by
#: :meth:`ResultCache.evict`.  Generous enough that no in-flight write
#: or removal can be this old.
_ORPHAN_TTL_S = 3600.0


class ResultCache:
    """On-disk store mapping point keys to JSON-serialisable values.

    Args:
        root: cache directory (created on first write).
        max_bytes: total payload-byte cap; least-recently-accessed
            entries are evicted to fit (``None`` = unbounded).
        max_entries: entry-count cap, same policy (``None`` = unbounded).
        evict_interval: writes between opportunistic :meth:`evict` scans
            when a cap is set (each scan stats every entry, so per-write
            eviction is kept off the hot path by default).

    Concurrent use is safe: entries are immutable once written (same key
    == same computation), writes are atomic renames, and removals rename
    the entry aside before unlinking — a torn or racing state can lose a
    cache hit (recomputed harmlessly) but never corrupt one.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        evict_interval: int = 64,
    ) -> None:
        self.root = Path(root)
        if max_bytes is not None and max_bytes < 0:
            raise SimulationError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise SimulationError("max_entries must be >= 0")
        if evict_interval < 1:
            raise SimulationError("evict_interval must be >= 1")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.evict_interval = evict_interval
        self._puts_since_evict = 0
        #: Lifetime operation counts for this cache object (always kept;
        #: mirrored into the metrics registry when collection is on).
        self._counts = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
            "corrupt_healed": 0,
        }

    @property
    def _bounded(self) -> bool:
        return self.max_bytes is not None or self.max_entries is not None

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def ledger_path(self) -> Path:
        """Where this cache's co-located run ledger lives.

        A root-level file: entry shards are ``<root>/xx/<key>.json``, so
        the ``*/*.json`` scans (caps, eviction, ``__len__``) never see
        it and ledger growth cannot evict cache entries.
        """
        return self.root / LEDGER_FILENAME

    def ledger(self) -> RunLedger:
        """The run ledger co-located with this cache."""
        return RunLedger(self.ledger_path)

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        A corrupted (truncated, non-JSON, wrong-shape) entry is healed:
        it is renamed aside, re-validated (a concurrent ``put`` may have
        replaced it with a good entry between our read and the removal —
        in that case the fresh entry is restored and its value returned),
        and only then unlinked.  A *transient* read failure (OSError —
        fd exhaustion under a wide worker pool, a flaky network
        filesystem) is just a miss: the entry is left in place for the
        next lookup.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:  # includes FileNotFoundError
            self._count("misses", "cache_misses")
            return MISS
        try:
            payload = json.loads(text)
            if payload["key"] != key:
                raise ValueError("key mismatch")
        except (ValueError, KeyError, TypeError):
            removed, recovered = self._discard(path, expect_key=key)
            if removed:
                self._count("corrupt_healed", "cache_corrupt_healed")
            if recovered is MISS:
                self._count("misses", "cache_misses")
            else:
                self._count("hits", "cache_hits")
            return recovered
        if self._bounded:
            self._touch(path)
        self._count("hits", "cache_hits")
        return payload["value"]

    def put(self, key: str, value: Any, *, ok: bool = True) -> None:
        """Atomically persist one value (must be JSON-serialisable).

        Only *successful* point values belong in the cache: a cached
        entry is served forever (same key == same computation), so
        caching a failure would turn a transient fault into a permanent
        wrong answer.  The executor only caches ``ok`` outcomes; the
        ``ok`` flag lets any other caller assert the same contract —
        ``put(key, record, ok=False)`` raises instead of poisoning the
        store.
        """
        if not ok:
            raise SimulationError(
                f"refusing to cache a failed point value for key {key[:12]}…: "
                f"the result cache stores successful computations only"
            )
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "value": value})
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("puts", "cache_puts")
        if self._bounded:
            self._puts_since_evict += 1
            if self._puts_since_evict >= self.evict_interval:
                self.evict()

    # -- lifecycle ---------------------------------------------------
    def _count(self, field: str, metric: str, n: int = 1) -> None:
        """Bump one lifetime counter (+ registry mirror when enabled)."""
        self._counts[field] += n
        if _metrics.enabled:
            _metrics.inc(metric, n)

    @staticmethod
    def _touch(path: Path) -> None:
        """Stamp an access time (mtime) on a hit — the LRU signal."""
        try:
            os.utime(path)
        except OSError:
            pass  # the entry may have just been evicted; still a hit

    def _discard(
        self, path: Path, *, expect_key: str | None = None
    ) -> tuple[bool, Any]:
        """Remove one entry file with the atomic rename-aside discipline.

        The entry is first atomically renamed to a unique dot-prefixed
        tombstone (invisible to :meth:`__len__` / :meth:`stats`), so no
        step here can ever tear a shard file a concurrent reader or
        writer is using.  With ``expect_key`` the removal is
        *conditional*: the tombstone is re-validated, and if it parses as
        a good entry for that key — meaning a concurrent ``put`` landed
        between the caller's corrupt read and this removal — it is
        renamed back into place and its value returned instead of
        destroyed.

        Returns:
            ``(removed, recovered)`` — whether an entry was actually
            removed, and the recovered value when a conditional removal
            found a valid racing entry (else :data:`MISS`).
        """
        tomb = path.with_name(f".evict-{os.getpid()}-{next(_TOMB_COUNTER)}.json")
        try:
            os.replace(path, tomb)
        except OSError:
            # Already gone — someone else removed or replaced it first.
            return False, MISS
        if expect_key is not None:
            try:
                payload = json.loads(tomb.read_text())
                valid = payload["key"] == expect_key and "value" in payload
            except (OSError, ValueError, KeyError, TypeError):
                valid = False
            if valid:
                # We grabbed a freshly-written good entry: put it back.
                # (Entries are immutable per key, so even if yet another
                # put landed meanwhile, the content is identical.)
                try:
                    os.replace(tomb, path)
                    return False, payload["value"]
                except OSError:
                    return False, MISS
        try:
            os.unlink(tomb)
        except OSError:
            pass
        return True, MISS

    def _entries(self) -> list[tuple[int, int, Path]]:
        """Live entries as ``(atime_ns, size, path)``, oldest first.

        Dot-prefixed files (atomic-write temps, eviction tombstones) are
        skipped; entries that vanish mid-scan are skipped too.
        """
        if not self.root.exists():
            return []
        records = []
        for path in self.root.glob("*/*.json"):
            if path.name.startswith("."):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            records.append((stat.st_mtime_ns, stat.st_size, path))
        records.sort(key=lambda record: (record[0], record[2].name))
        return records

    def stats(self) -> dict:
        """Occupancy, caps, and lifetime operation counts.

        ``{entries, total_bytes, max_bytes, max_entries}`` describe the
        store on disk (shared by every process using the directory);
        ``{hits, misses, puts, evictions, corrupt_healed}`` count this
        cache *object's* operations since construction.
        """
        records = self._entries()
        return {
            "entries": len(records),
            "total_bytes": sum(size for _, size, _ in records),
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            **self._counts,
        }

    def evict(self) -> dict:
        """Remove least-recently-accessed entries until the caps fit.

        Access time is the entry's mtime: stamped by ``put`` and
        refreshed by every bounded-cache ``get`` hit, so the removal
        order is true LRU.  Safe under concurrency — each removal is an
        atomic rename-aside, and losing a racing entry only costs a
        recomputation.

        Stale dot-files — atomic-write temps and tombstones orphaned by
        a crash between rename-aside and unlink — are invisible to the
        caps accounting, so each eviction scan also sweeps any older
        than an hour (in-flight files are never that old).

        Returns:
            ``{"evicted_entries", "evicted_bytes", "entries",
            "total_bytes"}`` describing what was removed and what
            remains.
        """
        self._puts_since_evict = 0
        cutoff = time.time() - _ORPHAN_TTL_S
        if self.root.exists():
            for orphan in self.root.glob("*/.*.json"):
                try:
                    if orphan.stat().st_mtime < cutoff:
                        orphan.unlink()
                except OSError:
                    continue
        records = self._entries()
        n_entries = len(records)
        total_bytes = sum(size for _, size, _ in records)
        evicted = 0
        evicted_bytes = 0
        for _, size, path in records:
            over_entries = (
                self.max_entries is not None and n_entries > self.max_entries
            )
            over_bytes = self.max_bytes is not None and total_bytes > self.max_bytes
            if not (over_entries or over_bytes):
                break
            removed, _recovered = self._discard(path)
            if removed:
                evicted += 1
                evicted_bytes += size
            n_entries -= 1
            total_bytes -= size
        if evicted:
            self._count("evictions", "cache_evictions", evicted)
        return {
            "evicted_entries": evicted,
            "evicted_bytes": evicted_bytes,
            "entries": n_entries,
            "total_bytes": total_bytes,
        }

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISS

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # Exclude orphaned atomic-write temp files (".tmp-*.json" left by
        # a worker killed mid-put) — pathlib's "*" matches dotfiles.
        return sum(
            1 for path in self.root.glob("*/*.json") if not path.name.startswith(".")
        )
