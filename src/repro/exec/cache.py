"""Content-addressed result cache for campaign points.

A campaign point is identified by a **stable content hash** of everything
that determines its result: the task reference and version, the merged
parameter dict (canonicalised, so dict insertion order never matters), and
the point's seed.  Parameters may contain numbers, strings, booleans,
``None``, (nested) lists/tuples/dicts, numpy scalars and arrays, and any
object exposing a ``fingerprint()`` method — in particular
:class:`~repro.core.circuit.QuditCircuit`, whose fingerprint covers its
exact gate/Kraus bytes.  Hashing uses :mod:`hashlib` only (never Python's
per-process-salted ``hash``), so keys are identical across worker
processes, sessions, and machines.

The on-disk layout is one JSON file per key, sharded by the key's first
two hex characters.  Writes are atomic (temp file + ``os.replace``) so a
crashed or killed worker can never leave a *truncated* entry behind — and
if one ever appears anyway (e.g. a torn copy), unreadable entries are
treated as misses and quietly evicted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["stable_hash", "point_key", "ResultCache", "MISS"]

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


def _feed(hasher, obj) -> None:
    """Feed one object's canonical encoding into a hash object.

    Every value is prefixed with a type tag so values of different types
    can never collide (``1`` vs ``1.0`` vs ``"1"``), and containers are
    length-prefixed so concatenations can't alias.
    """
    if obj is None:
        hasher.update(b"N;")
    elif isinstance(obj, (bool, np.bool_)):
        hasher.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, (int, np.integer)):
        hasher.update(f"i{int(obj)};".encode())
    elif isinstance(obj, (float, np.floating)):
        # float.hex() is exact and locale/platform independent.
        hasher.update(f"f{float(obj).hex()};".encode())
    elif isinstance(obj, (complex, np.complexfloating)):
        obj = complex(obj)
        hasher.update(f"c{obj.real.hex()},{obj.imag.hex()};".encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        hasher.update(f"s{len(raw)}:".encode())
        hasher.update(raw)
    elif isinstance(obj, bytes):
        hasher.update(f"y{len(obj)}:".encode())
        hasher.update(obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype == object:
            # tobytes() on an object array serialises raw pointers —
            # different in every process, which would silently break both
            # cache hits and the serial==parallel seed guarantee.
            raise SimulationError(
                "cannot stably hash an object-dtype numpy array — use a "
                "list (or a homogeneous numeric array) instead"
            )
        arr = np.ascontiguousarray(obj)
        hasher.update(f"a{arr.dtype.str}{arr.shape};".encode())
        hasher.update(arr.tobytes())
    elif isinstance(obj, Mapping):
        # Canonical order: items sorted by the digest of their key, so any
        # insertion order (and any hashable key type) yields one encoding.
        items = sorted(
            obj.items(), key=lambda item: stable_hash(item[0])
        )
        hasher.update(f"d{len(items)}:".encode())
        for key, value in items:
            _feed(hasher, key)
            _feed(hasher, value)
    elif isinstance(obj, (list, tuple)) or (
        isinstance(obj, Sequence) and not isinstance(obj, (str, bytes))
    ):
        hasher.update(f"l{len(obj)}:".encode())
        for item in obj:
            _feed(hasher, item)
    elif hasattr(obj, "fingerprint") and callable(obj.fingerprint):
        hasher.update(f"F{type(obj).__name__}:".encode())
        _feed(hasher, obj.fingerprint())
    else:
        raise SimulationError(
            f"cannot stably hash {type(obj).__name__!r} — campaign "
            f"parameters must be JSON-like values, numpy data, or objects "
            f"with a fingerprint() method"
        )


def stable_hash(obj) -> str:
    """Process-independent SHA-256 hex digest of a parameter-like value."""
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.hexdigest()


def point_key(
    task: str, version: str, params: Mapping, seed: int | None
) -> str:
    """Cache key of one campaign point.

    Covers the task's identity and version, every parameter (order-
    independently), and the seed — so the key changes whenever the
    circuit content, backend caps, parameter values, or seed change, and
    *only* then.
    """
    return stable_hash(
        {"task": task, "version": version, "params": dict(params), "seed": seed}
    )


class ResultCache:
    """On-disk store mapping point keys to JSON-serialisable values.

    Args:
        root: cache directory (created on first write).

    Concurrent use is safe: entries are immutable once written (same key
    == same computation), writes are atomic renames, and readers treat
    unreadable entries as misses.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The cached value for ``key``, or :data:`MISS`.

        A corrupted (truncated, non-JSON, wrong-shape) entry is evicted
        and reported as a miss, so a damaged cache heals by recomputation
        instead of poisoning campaigns.  A *transient* read failure
        (OSError — fd exhaustion under a wide worker pool, a flaky
        network filesystem) is just a miss: the entry is left in place
        for the next lookup.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:  # includes FileNotFoundError
            return MISS
        try:
            payload = json.loads(text)
            if payload["key"] != key:
                raise ValueError("key mismatch")
            return payload["value"]
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return MISS

    def put(self, key: str, value) -> None:
        """Atomically persist one value (must be JSON-serialisable)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "value": value})
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISS

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # Exclude orphaned atomic-write temp files (".tmp-*.json" left by
        # a worker killed mid-put) — pathlib's "*" matches dotfiles.
        return sum(
            1
            for path in self.root.glob("*/*.json")
            if not path.name.startswith(".")
        )
