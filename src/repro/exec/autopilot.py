"""Error-budget autopilot: accuracy-aware backend planning.

:func:`repro.exec.select_backend` historically ranked engines by
*predicted speed* alone — the caller hand-picked ``max_bond`` /
``max_kraus`` / trajectory counts and hoped the accuracy landed.  This
module adds the accuracy half of the contract: state a target once
(``target_error=1e-6``) and :func:`plan_backend` returns a
:class:`BackendPlan` — engine, caps, and trajectory count — predicted
to meet it at minimum predicted cost.

Three model families feed the plan:

* **Truncation** — an entanglement-growth model for bond-truncating
  engines (MPS, LPDO): per two-site gate, the discarded Schmidt weight
  decays exponentially in the bond cap
  (``trunc_err_per_gate * exp(-chi / trunc_chi_scale)``), and caps at or
  above the register's exact Schmidt rank (:func:`exact_bond_dim`) are
  error-free by construction.
* **Purification** — the same shape for the LPDO Kraus legs
  (``purif_err_per_channel * exp(-kappa / purif_kappa_scale)`` per
  channel).  Unlike bond truncation there is no finite exactness
  threshold: the leg regrows at every channel, so only an uncapped leg
  or a channel-free circuit is modelled as error-free.
* **Sampling** — the Monte-Carlo standard error of trajectory-based
  engines, ``mc_sigma / sqrt(n_trajectories)``.

The constants are calibration entries like the cost constants
(:data:`repro.exec.costmodel.DEFAULT_CALIBRATION`), and
:func:`recalibrate` updates both families online from a
:class:`~repro.obs.ledger.RunLedger` — observed per-point wall times
rescale the chosen engine's cost constant, and the truncation /
purification accounts shipped back by campaign workers
(:meth:`RunLedger.error_account_samples`) refit the error rates — so
the *next* plan learns from completed runs instead of trusting the
committed ``BENCH_exec.json`` forever.
"""

from __future__ import annotations

import math
import os
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.dims import validate_dims
from ..core.exceptions import SimulationError
from ..obs.ledger import RunLedger
from .costmodel import (
    _DENSE_CAP,
    BackendChoice,
    _estimate,
    load_calibration,
)

__all__ = [
    "BackendPlan",
    "exact_bond_dim",
    "exact_kraus_dim",
    "plan_backend",
    "predicted_sampling_error",
    "predicted_truncation_error",
    "predicted_purification_error",
    "recalibrate",
]

#: Search ceilings for cap ladders — plans never propose caps past these.
_MAX_PLANNED_CHI = 4096
_MAX_PLANNED_KAPPA = 256
_MAX_PLANNED_TRAJECTORIES = 1 << 20

#: Calibration key charged for each engine's wall-time recalibration.
_ENGINE_COST_KEY = {
    "statevector": "statevector_amp_op_s",
    "density": "density_amp2_op_s",
    "trajectories": "trajectories_amp_op_s",
    "mps": "mps_site_chi3_op_s",
    "lpdo": "lpdo_site_chi3_kappa2_op_s",
}


@dataclass(frozen=True)
class BackendPlan(BackendChoice):
    """A :class:`~repro.exec.costmodel.BackendChoice` with an error contract.

    Every :func:`repro.exec.select_backend` call now returns one of
    these (it *is a* ``BackendChoice``, so existing callers are
    untouched).  The extra fields record the accuracy side of the
    decision; ``estimates`` rows gain a ``predicted_error`` entry.

    Attributes:
        target_error: the requested error budget (``None`` = legacy
            speed-only selection).
        predicted_error: the model's error prediction for the chosen
            engine/caps (0.0 for exact configurations).
        predicted_cost_s: the model's wall-time prediction for the
            chosen configuration.
    """

    target_error: float | None = None
    predicted_error: float = 0.0
    predicted_cost_s: float = 0.0

    def meets_target(self) -> bool:
        """Whether the predicted error is within the requested budget."""
        return self.target_error is None or (
            self.predicted_error <= self.target_error
        )

    def explain(self) -> str:
        """Human-readable plan summary: choice, contract, scoring table."""
        lines = [f"plan: {self.name}  options={self.options or {}}"]
        if self.target_error is not None:
            lines.append(
                f"contract: target_error={self.target_error:g} -> "
                f"predicted_error={self.predicted_error:.3e} "
                f"({'met' if self.meets_target() else 'NOT met'}), "
                f"predicted_cost_s={self.predicted_cost_s:.3e}"
            )
        else:
            lines.append(
                f"no target_error (speed-only selection); "
                f"predicted_error={self.predicted_error:.3e}, "
                f"predicted_cost_s={self.predicted_cost_s:.3e}"
            )
        lines.append(f"reason: {self.reason}")
        for name in sorted(self.estimates):
            row = self.estimates[name]
            err = row.get("predicted_error")
            lines.append(
                f"  {name:<12} feasible={'yes' if row.get('feasible') else 'no':<3} "
                f"est_seconds={row['est_seconds']:.2e} "
                f"memory_bytes={row['memory_bytes']:.3g}"
                + (f" predicted_error={err:.2e}" if err is not None else "")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# register-derived exact dimensions
# ----------------------------------------------------------------------
def exact_bond_dim(dims: Sequence[int]) -> int:
    """Largest Schmidt rank any bipartition of the register can need.

    A bond cap at or above this renders MPS/LPDO bond truncation exact,
    so it is both the ceiling of any cap search and the register-derived
    default cap (clamped to the legacy 32) when the caller gives none.
    """
    sizes = [int(d) for d in dims]
    if len(sizes) <= 1:
        return 1
    best = 1
    left = 1
    total = 1
    for d in sizes:
        total *= d
    for d in sizes[:-1]:
        left *= d
        best = max(best, min(left, total // left))
    return best


def exact_kraus_dim(dims: Sequence[int], noisy: bool) -> int:
    """Register-derived default Kraus cap: the local operator space.

    A site's *instantaneous* mixedness needs at most ``d^2`` purifying
    directions, which makes this the natural register-derived default
    cap.  It is **not** an exactness threshold for circuit evolution:
    the leg regrows at every channel and the sequential compression
    compounds (see :func:`predicted_purification_error`), so the
    contract planner's ladder may exceed it.  Noiseless circuits never
    grow the leg at all.
    """
    if not noisy:
        return 1
    return max(int(d) for d in dims) ** 2


# ----------------------------------------------------------------------
# error models
# ----------------------------------------------------------------------
def predicted_truncation_error(
    chi: int | None,
    *,
    n_two_site: int,
    chi_exact: int,
    calibration: dict[str, float],
) -> float:
    """Predicted accumulated bond-truncation error at cap ``chi``."""
    if chi is None or chi >= chi_exact or n_two_site <= 0:
        return 0.0
    return float(
        calibration["trunc_err_per_gate"]
        * n_two_site
        * math.exp(-chi / calibration["trunc_chi_scale"])
    )


def predicted_purification_error(
    kappa: int | None,
    *,
    n_channels: int,
    kappa_exact: int,
    calibration: dict[str, float],
) -> float:
    """Predicted accumulated Kraus-leg truncation error at cap ``kappa``.

    Unlike bond truncation — which is genuinely exact once ``chi``
    reaches the register's Schmidt rank — a *finite* Kraus cap is never
    modelled as error-free when the circuit applies channels: the leg
    regrows at every channel and the sequential local compression
    compounds, so the error decays with ``kappa`` but does not hit an
    exactness wall at ``kappa_exact``.  Only an uncapped leg
    (``kappa=None``, nothing ever discarded) or a channel-free circuit
    is error-free.
    """
    if kappa is None or n_channels <= 0:
        return 0.0
    return float(
        calibration["purif_err_per_channel"]
        * n_channels
        * math.exp(-kappa / calibration["purif_kappa_scale"])
    )


def predicted_sampling_error(
    n_trajectories: int, *, calibration: dict[str, float]
) -> float:
    """Monte-Carlo standard error of an ``n_trajectories``-wide estimate."""
    return float(calibration["mc_sigma"] / math.sqrt(max(1, n_trajectories)))


def _ladder(lo: int, hi: int) -> list[int]:
    """Doubling ladder ``lo, 2 lo, ...`` ending exactly at ``hi``."""
    if hi <= lo:
        return [max(1, hi)]
    out = []
    v = lo
    while v < hi:
        out.append(v)
        v *= 2
    out.append(hi)
    return out


@dataclass(frozen=True)
class _Config:
    """One candidate engine configuration under evaluation."""

    chi: int
    kappa: int
    n_trajectories: int
    predicted_error: float


def _engine_config(
    name: str,
    *,
    noisy: bool,
    target_error: float,
    chi_exact: int,
    kappa_exact: int,
    n_two_site: int,
    n_channels: int,
    max_bond: int | None,
    max_kraus: int | None,
    calibration: dict[str, float],
) -> _Config:
    """Cheapest configuration of one engine predicted to meet the target.

    Cost is monotone in every knob, so the first ladder rung whose
    predicted error fits the (split) budget is the cheapest; when no
    rung fits, the largest is returned and the caller's feasibility
    filter rejects the engine on its ``predicted_error``.
    """

    def pick_chi(share: float) -> tuple[int, float]:
        cap = min(chi_exact, _MAX_PLANNED_CHI)
        if max_bond is not None:
            cap = min(cap, int(max_bond))
        for chi in _ladder(2, cap):
            err = predicted_truncation_error(
                chi,
                n_two_site=n_two_site,
                chi_exact=chi_exact,
                calibration=calibration,
            )
            if err <= share:
                return chi, err
        return cap, predicted_truncation_error(
            cap,
            n_two_site=n_two_site,
            chi_exact=chi_exact,
            calibration=calibration,
        )

    def pick_kappa(share: float) -> tuple[int, float]:
        # No kappa_exact ceiling here: finite Kraus caps are never
        # error-free under channels, so the ladder may climb past the
        # local operator-space dimension if the budget demands it.
        cap = _MAX_PLANNED_KAPPA
        if max_kraus is not None:
            cap = min(cap, int(max_kraus))
        for kappa in _ladder(2, cap):
            err = predicted_purification_error(
                kappa,
                n_channels=n_channels,
                kappa_exact=kappa_exact,
                calibration=calibration,
            )
            if err <= share:
                return kappa, err
        return cap, predicted_purification_error(
            cap,
            n_channels=n_channels,
            kappa_exact=kappa_exact,
            calibration=calibration,
        )

    def pick_trajectories(share: float) -> tuple[int, float]:
        needed = math.ceil((calibration["mc_sigma"] / share) ** 2)
        n = max(1, min(_MAX_PLANNED_TRAJECTORIES, needed))
        return n, predicted_sampling_error(n, calibration=calibration)

    if name in ("statevector", "density"):
        return _Config(chi=1, kappa=1, n_trajectories=1, predicted_error=0.0)
    if name == "trajectories":
        n, err = pick_trajectories(target_error)
        return _Config(chi=1, kappa=1, n_trajectories=n, predicted_error=err)
    if name == "mps":
        if not noisy:
            chi, err = pick_chi(target_error)
            return _Config(
                chi=chi, kappa=1, n_trajectories=1, predicted_error=err
            )
        chi, trunc = pick_chi(target_error / 2.0)
        n, mc = pick_trajectories(target_error / 2.0)
        return _Config(
            chi=chi, kappa=1, n_trajectories=n, predicted_error=trunc + mc
        )
    if name == "lpdo":
        chi, trunc = pick_chi(target_error / 2.0)
        kappa, purif = pick_kappa(target_error / 2.0)
        return _Config(
            chi=chi,
            kappa=kappa,
            n_trajectories=1,
            predicted_error=trunc + purif,
        )
    raise SimulationError(f"no accuracy model for engine {name!r}")


def _legacy_error(
    name: str,
    *,
    noisy: bool,
    chi: int,
    kappa: int,
    n_trajectories: int,
    chi_exact: int,
    kappa_exact: int,
    n_two_site: int,
    n_channels: int,
    calibration: dict[str, float],
) -> float:
    """Predicted error of the *given* caps (speed-only selection path)."""
    if name in ("statevector", "density"):
        return 0.0
    if name == "trajectories":
        return predicted_sampling_error(n_trajectories, calibration=calibration)
    trunc = predicted_truncation_error(
        chi, n_two_site=n_two_site, chi_exact=chi_exact, calibration=calibration
    )
    if name == "mps":
        if not noisy:
            return trunc
        return trunc + predicted_sampling_error(
            n_trajectories, calibration=calibration
        )
    return trunc + predicted_purification_error(
        kappa,
        n_channels=n_channels,
        kappa_exact=kappa_exact,
        calibration=calibration,
    )


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def _plan(
    dims: tuple[int, ...],
    *,
    noisy: bool,
    n_instructions: int,
    allow_sampling: bool,
    n_trajectories: int,
    max_bond: int | None,
    max_kraus: int | None,
    target_error: float | None,
    n_two_site: int,
    n_channels: int,
    calibration: dict[str, float],
) -> BackendPlan:
    dim = float(np.prod([float(d) for d in dims]))
    chi_exact = exact_bond_dim(dims)
    kappa_exact = exact_kraus_dim(dims, noisy)
    if not noisy:
        candidates = ["statevector", "mps"]
    else:
        candidates = ["density", "lpdo"]
        if allow_sampling:
            candidates += ["trajectories", "mps"]

    if target_error is None:
        # Legacy contract: rank by predicted speed at the caller's caps
        # (register-derived defaults when none are given — an exact
        # engine is never modelled wider than the register can need).
        chi = int(max_bond) if max_bond is not None else min(32, chi_exact)
        kappa = int(max_kraus) if max_kraus is not None else min(8, kappa_exact)
        table = _estimate(
            dims,
            noisy,
            n_instructions,
            chi=chi,
            kappa=kappa,
            n_trajectories=n_trajectories,
            calibration=calibration,
        )
        for name, row in table.items():
            row["predicted_error"] = _legacy_error(
                name,
                noisy=noisy,
                chi=chi,
                kappa=kappa,
                n_trajectories=n_trajectories,
                chi_exact=chi_exact,
                kappa_exact=kappa_exact,
                n_two_site=n_two_site,
                n_channels=n_channels,
                calibration=calibration,
            )
        feasible = [name for name in candidates if table[name]["feasible"]]
        if not feasible:
            raise SimulationError(
                f"no feasible backend for dims={dims} noisy={noisy} under a "
                f"{calibration['memory_budget_bytes']:.3g}-byte budget; "
                "estimates: "
                + ", ".join(
                    f"{name}={table[name]['memory_bytes']:.3g}B"
                    for name in candidates
                )
            )
        chosen = min(feasible, key=lambda name: table[name]["est_seconds"])
        options: dict[str, Any] = {}
        if chosen in ("mps", "lpdo"):
            options["max_bond"] = chi
        if chosen == "lpdo":
            options["max_kraus"] = kappa
        if chosen in ("trajectories", "mps") and noisy:
            options["n_trajectories"] = n_trajectories
        reason = (
            f"{'noisy' if noisy else 'noiseless'} register D={dim:.3g} on "
            f"{len(dims)} sites; cheapest feasible of {feasible} by the "
            f"calibrated model ({table[chosen]['est_seconds']:.2e} s estimated)"
        )
        return BackendPlan(
            name=chosen,
            options=options,
            reason=reason,
            estimates=table,
            target_error=None,
            predicted_error=float(table[chosen]["predicted_error"]),
            predicted_cost_s=float(table[chosen]["est_seconds"]),
        )

    # Accuracy contract: per engine, the cheapest configuration predicted
    # to meet the target; then the cheapest engine among those that do.
    if target_error <= 0:
        raise SimulationError("target_error must be positive")
    table = {}
    configs: dict[str, _Config] = {}
    for name in candidates:
        config = _engine_config(
            name,
            noisy=noisy,
            target_error=target_error,
            chi_exact=chi_exact,
            kappa_exact=kappa_exact,
            n_two_site=n_two_site,
            n_channels=n_channels,
            max_bond=max_bond,
            max_kraus=max_kraus,
            calibration=calibration,
        )
        row = _estimate(
            dims,
            noisy,
            n_instructions,
            chi=config.chi,
            kappa=config.kappa,
            n_trajectories=config.n_trajectories,
            calibration=calibration,
        )[name]
        row["predicted_error"] = config.predicted_error
        table[name] = row
        configs[name] = config
    meeting = [
        name
        for name in candidates
        if table[name]["feasible"]
        and table[name]["predicted_error"] <= target_error
    ]
    if not meeting:
        raise SimulationError(
            f"no engine predicted to meet target_error={target_error:g} for "
            f"dims={dims} noisy={noisy} under a "
            f"{calibration['memory_budget_bytes']:.3g}-byte budget; best "
            "predictions: "
            + ", ".join(
                f"{name}={table[name]['predicted_error']:.2e}"
                f"@{table[name]['memory_bytes']:.3g}B"
                for name in candidates
            )
        )
    chosen = min(meeting, key=lambda name: table[name]["est_seconds"])
    config = configs[chosen]
    options = {}
    if chosen in ("mps", "lpdo"):
        options["max_bond"] = config.chi
    if chosen == "lpdo":
        options["max_kraus"] = config.kappa
    if chosen == "trajectories" or (chosen == "mps" and noisy):
        options["n_trajectories"] = config.n_trajectories
    reason = (
        f"target_error={target_error:g} on a "
        f"{'noisy' if noisy else 'noiseless'} register D={dim:.3g} over "
        f"{len(dims)} sites; cheapest of {meeting} meeting the budget "
        f"(predicted error {config.predicted_error:.2e}, "
        f"{table[chosen]['est_seconds']:.2e} s estimated)"
    )
    return BackendPlan(
        name=chosen,
        options=options,
        reason=reason,
        estimates=table,
        target_error=float(target_error),
        predicted_error=float(config.predicted_error),
        predicted_cost_s=float(table[chosen]["est_seconds"]),
    )


def plan_backend(
    dims: Sequence[int],
    *,
    noisy: bool,
    n_instructions: int = 100,
    memory_budget: float | None = None,
    observables: str = "local",
    allow_sampling: bool = False,
    n_trajectories: int = 128,
    max_bond: int | None = None,
    max_kraus: int | None = None,
    calibration: dict[str, float] | None = None,
    target_error: float | None = None,
    ledger: RunLedger | str | os.PathLike[str] | None = None,
    n_two_site: int | None = None,
    n_channels: int | None = None,
) -> BackendPlan:
    """Plan engine + caps for one workload, optionally under an error budget.

    The engine behind :func:`repro.exec.select_backend` — see there for
    the shared arguments.  The planning-specific ones:

    Args:
        target_error: total error budget for the delivered observables.
            ``None`` keeps the legacy speed-only ranking at the caller's
            caps; a positive float makes the plan search each engine's
            cap/trajectory ladder for the cheapest configuration whose
            *predicted* error meets the budget, and raises
            :class:`SimulationError` when none does.
        ledger: a :class:`~repro.obs.ledger.RunLedger` (or its path).
            When given, the plan is recalibrated against the ledger's
            observed wall times and truncation accounts
            (:func:`recalibrate`) and re-planned once.
        n_two_site: two-site gate count of the circuit (drives the
            entanglement-growth model; default: ``n_instructions / 2``).
        n_channels: channel/reset instruction count (drives the
            purification model; default: ``n_instructions / 3`` when
            noisy).

    Returns:
        A :class:`BackendPlan` (also a valid
        :class:`~repro.exec.costmodel.BackendChoice`).
    """
    dims = validate_dims(dims)
    if observables not in ("local", "dense"):
        raise SimulationError(f"unknown observables hint {observables!r}")
    calib = dict(calibration or load_calibration())
    if memory_budget is not None:
        calib["memory_budget_bytes"] = float(memory_budget)
    dim = float(np.prod([float(d) for d in dims]))
    if observables == "dense" and dim > _DENSE_CAP:
        raise SimulationError(
            f"dense observables requested but register dimension {dim:.3g} "
            f"exceeds the densification cap {_DENSE_CAP:.3g}"
        )
    two_site = (
        int(n_two_site)
        if n_two_site is not None
        else max(1, int(n_instructions) // 2)
    )
    channels = (
        int(n_channels)
        if n_channels is not None
        else (max(1, int(n_instructions) // 3) if noisy else 0)
    )

    def plan_with(constants: dict[str, float]) -> BackendPlan:
        return _plan(
            dims,
            noisy=noisy,
            n_instructions=n_instructions,
            allow_sampling=allow_sampling,
            n_trajectories=n_trajectories,
            max_bond=max_bond,
            max_kraus=max_kraus,
            target_error=target_error,
            n_two_site=two_site,
            n_channels=channels,
            calibration=constants,
        )

    if not ledger:
        return plan_with(calib)
    if isinstance(ledger, (str, os.PathLike)):
        ledger = RunLedger(ledger)
    first = plan_with(calib)
    calib = recalibrate(
        ledger,
        calib,
        engine=first.name,
        predicted_point_s=first.predicted_cost_s,
    )
    return plan_with(calib)


# ----------------------------------------------------------------------
# online recalibration
# ----------------------------------------------------------------------
def recalibrate(
    ledger: RunLedger,
    calibration: dict[str, float] | None = None,
    *,
    engine: str | None = None,
    predicted_point_s: float | None = None,
    **filters: Any,
) -> dict[str, float]:
    """Updated calibration constants learned from a run ledger.

    Two independent updates, each applied only when the ledger holds
    usable samples (an empty or irrelevant ledger returns the input
    constants unchanged):

    * **Cost**: when ``engine`` and its ``predicted_point_s`` are given,
      the engine's cost constant is scaled by the ratio of the observed
      median per-point wall time (:meth:`RunLedger.exec_s_distribution`)
      to the prediction, clamped to a factor of 32 either way so one
      polluted ledger cannot push a constant into absurdity.
    * **Accuracy**: the per-event truncation / purification rates
      implied by the workers' error accounts
      (:meth:`RunLedger.error_account_samples`) refit
      ``trunc_err_per_gate`` / ``purif_err_per_channel`` by inverting
      the exponential model at each sample's observed cap (median over
      samples, clamped to ``[1e-12, 1.0]``).

    Args:
        ledger: the sample store.
        calibration: constants to start from (default: the committed
            record via :func:`repro.exec.costmodel.load_calibration`).
        engine: engine whose cost constant the wall-time samples charge.
        predicted_point_s: the model's per-point prediction those
            samples are compared against.
        **filters: :meth:`RunLedger.query` filters restricting which
            runs contribute samples.

    Returns:
        A new constants dict (the input is never mutated).
    """
    calib = dict(calibration or load_calibration())
    key = _ENGINE_COST_KEY.get(engine or "")
    if key is not None and predicted_point_s and predicted_point_s > 0:
        dist = ledger.exec_s_distribution(**filters)
        if dist and dist.get("p50", 0.0) > 0.0:
            scale = dist["p50"] / float(predicted_point_s)
            scale = min(32.0, max(1.0 / 32.0, scale))
            calib[key] = float(calib[key]) * scale
    trunc_rates: list[float] = []
    purif_rates: list[float] = []
    chi_scale = float(calib["trunc_chi_scale"])
    kappa_scale = float(calib["purif_kappa_scale"])
    for sample in ledger.error_account_samples(**filters):
        events = int(sample.get("bond_truncations") or 0)
        err = float(sample.get("truncation_error") or 0.0)
        chi = int(sample.get("max_chi") or 0)
        if events > 0 and err > 0.0 and chi > 0:
            trunc_rates.append(err / (events * math.exp(-chi / chi_scale)))
        events = int(sample.get("kraus_truncations") or 0)
        err = float(sample.get("purification_error") or 0.0)
        kappa = int(sample.get("max_kappa") or 0)
        if events > 0 and err > 0.0 and kappa > 0:
            purif_rates.append(err / (events * math.exp(-kappa / kappa_scale)))
    if trunc_rates:
        calib["trunc_err_per_gate"] = min(
            1.0, max(1e-12, float(np.median(trunc_rates)))
        )
    if purif_rates:
        calib["purif_err_per_channel"] = min(
            1.0, max(1e-12, float(np.median(purif_rates)))
        )
    return calib
