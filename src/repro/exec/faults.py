"""Deterministic fault injection for campaign robustness testing.

The supervised executor promises that worker crashes, transient task
exceptions, and per-point timeouts never change a campaign's *values* —
only its wall-clock.  That promise is only testable if faults can be
produced **on demand and reproducibly**.  A :class:`FaultPlan` is a
picklable, seeded schedule of injected faults: for every
``(point, attempt)`` pair it deterministically decides to do nothing, to
sleep, to raise :class:`InjectedFault`, or to kill the executing worker
process outright (``os._exit`` or ``SIGKILL``).  The decision depends
only on the plan's seed and the point's content key, so the same plan
produces the same fault schedule in every process, on every run — which
is what lets the chaos suite assert *bit-identical* recovery against a
clean serial baseline.

Faults are bounded per point: attempts beyond ``max_faulty_attempts``
are always clean, so any retry/crash budget larger than the plan's fault
budget is guaranteed to converge.

Thread a plan into execution with
``CampaignExecutor.submit(campaign, faults=plan)``.  Kill faults only
fire inside supervised worker processes — the in-process serial path
skips them (killing the host would take the test runner with it).

:func:`corrupt_cache_entry` / :func:`corrupt_cache` complete the
harness: they damage on-disk :class:`~repro.exec.cache.ResultCache`
entries (truncation, garbage, key mismatch) so tests can verify that
corruption is healed — detected, evicted, recomputed — rather than
served.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.exceptions import SimulationError

if TYPE_CHECKING:
    from .cache import ResultCache
    from .sweep import CampaignPoint

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "corrupt_cache_entry",
    "corrupt_cache",
]

_SEED_MASK = 2**63 - 1

#: The ways :func:`corrupt_cache_entry` can damage an entry.
_CORRUPTION_MODES = ("truncate", "garbage", "wrong_key")


class InjectedFault(RuntimeError):
    """A transient failure raised by a :class:`FaultPlan` (retryable)."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Attributes:
        seed: schedule seed; same seed + same points => same faults.
        p_exception: per-attempt probability of raising
            :class:`InjectedFault` instead of running the task.
        p_kill: per-attempt probability of killing the worker process
            (a hard death: no exception, no result — the supervisor must
            notice via liveness monitoring).
        p_delay: per-attempt probability of sleeping ``delay_s`` before
            running the task (exercises timeout paths and completion-
            order robustness; the attempt still succeeds).
        delay_s: injected delay duration in seconds.
        max_faulty_attempts: attempts per point that may fault; every
            later attempt is clean, bounding worst-case recovery.
        kill_mode: ``"exit"`` (``os._exit(13)``) or ``"sigkill"``
            (``SIGKILL`` to self) — two distinct hard-death flavours.
    """

    seed: int = 0
    p_exception: float = 0.0
    p_kill: float = 0.0
    p_delay: float = 0.0
    delay_s: float = 0.005
    max_faulty_attempts: int = 2
    kill_mode: str = "exit"

    def __post_init__(self) -> None:
        for name in ("p_exception", "p_kill", "p_delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {p}")
        if self.p_exception + self.p_kill + self.p_delay > 1.0 + 1e-12:
            raise SimulationError("fault probabilities must sum to <= 1")
        if self.delay_s < 0:
            raise SimulationError("delay_s must be >= 0")
        if self.max_faulty_attempts < 0:
            raise SimulationError("max_faulty_attempts must be >= 0")
        if self.kill_mode not in ("exit", "sigkill"):
            raise SimulationError(
                f"kill_mode must be 'exit' or 'sigkill', got {self.kill_mode!r}"
            )

    # -- the deterministic schedule ------------------------------------
    def schedule(self, point: CampaignPoint) -> tuple[str | None, ...]:
        """Fault kinds for the point's first ``max_faulty_attempts`` tries.

        Entry ``i`` is the fault for attempt ``i + 1``: one of
        ``"exception"``, ``"kill"``, ``"delay"``, or ``None``.  Derived
        from ``(plan.seed, point.key)`` only, so the schedule is
        identical in every worker process and across runs.
        """
        entropy = int(point.key[:16], 16)
        rng = np.random.default_rng([self.seed & _SEED_MASK, entropy])
        kinds: list[str | None] = []
        for _ in range(self.max_faulty_attempts):
            u = float(rng.random())
            if u < self.p_kill:
                kinds.append("kill")
            elif u < self.p_kill + self.p_exception:
                kinds.append("exception")
            elif u < self.p_kill + self.p_exception + self.p_delay:
                kinds.append("delay")
            else:
                kinds.append(None)
        return tuple(kinds)

    def fault_for(self, point: CampaignPoint, attempt: int) -> str | None:
        """The fault injected on the ``attempt``-th execution (1-based)."""
        if attempt < 1 or attempt > self.max_faulty_attempts:
            return None
        return self.schedule(point)[attempt - 1]

    def apply(self, point: CampaignPoint, attempt: int, *, in_worker: bool) -> None:
        """Inject this ``(point, attempt)``'s scheduled fault, if any.

        Called by the execution layer immediately before the task runs.
        ``in_worker`` gates kill faults: only a supervised worker process
        may be killed (the serial in-process path skips them).
        """
        kind = self.fault_for(point, attempt)
        if kind is None:
            return
        if kind == "delay":
            time.sleep(self.delay_s)
            return
        if kind == "exception":
            raise InjectedFault(
                f"injected fault: point {point.index} attempt {attempt}"
            )
        # kind == "kill"
        if not in_worker:
            return
        if self.kill_mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(13)


# ----------------------------------------------------------------------
# cache corruption
# ----------------------------------------------------------------------
def corrupt_cache_entry(
    cache: ResultCache, key: str, mode: str = "truncate"
) -> bool:
    """Damage one on-disk cache entry (for heal-path tests).

    Args:
        cache: a :class:`~repro.exec.cache.ResultCache`.
        key: the entry's point key.
        mode: ``"truncate"`` (torn write), ``"garbage"`` (non-JSON
            bytes), or ``"wrong_key"`` (valid JSON whose recorded key
            mismatches its filename).

    Returns:
        ``True`` if an entry existed and was damaged.
    """
    if mode not in _CORRUPTION_MODES:
        raise SimulationError(
            f"unknown corruption mode {mode!r}; expected one of {_CORRUPTION_MODES}"
        )
    path = cache._path(key)
    try:
        text = path.read_text()
    except OSError:
        return False
    if mode == "truncate":
        path.write_text(text[: max(1, len(text) // 2)])
    elif mode == "garbage":
        path.write_text("\x00not json at all\x00")
    else:  # wrong_key
        path.write_text(json.dumps({"key": "0" * 64, "value": None}))
    return True


def corrupt_cache(
    cache: ResultCache,
    points: Iterable[CampaignPoint],
    *,
    seed: int = 0,
    fraction: float = 0.5,
) -> int:
    """Deterministically corrupt a fraction of the points' cache entries.

    Each selected entry gets a corruption mode drawn from the same
    seeded stream, cycling through every mode across a large enough
    selection.

    Args:
        cache: the :class:`~repro.exec.cache.ResultCache` to damage.
        points: :class:`~repro.exec.sweep.CampaignPoint` iterable whose
            keys identify the candidate entries.
        seed: selection/mode seed.
        fraction: expected fraction of entries to corrupt.

    Returns:
        The number of entries actually damaged.
    """
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError("fraction must be in [0, 1]")
    damaged = 0
    for point in points:
        entropy = int(point.key[:16], 16)
        rng = np.random.default_rng([seed & _SEED_MASK, entropy, 0xC0DE])
        if float(rng.random()) >= fraction:
            continue
        mode = _CORRUPTION_MODES[int(rng.integers(0, len(_CORRUPTION_MODES)))]
        if corrupt_cache_entry(cache, point.key, mode):
            damaged += 1
    return damaged
