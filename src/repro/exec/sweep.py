"""Declarative parameter sweeps and the campaign specification.

A :class:`Sweep` is an ordered, immutable list of parameter dictionaries —
built by Cartesian product (:func:`grid_sweep`), lock-step pairing
(:func:`zip_sweep`), or seeded random sampling (:func:`random_sweep`).  A
:class:`Campaign` binds a sweep to a *task* (a module-level function named
``"package.module:function"`` so worker processes can import it), shared
base parameters, and a root seed.

Per-point seeds are derived with :func:`repro.core.rng.spawn_seeds`
(``SeedSequence`` spawning): point ``i``'s seed depends only on the root
seed and ``i``, never on execution order or process layout, so a campaign
produces bit-identical results run serially, in parallel, resumed from a
checkpoint, or sliced across overlapping campaigns.
"""

from __future__ import annotations

import importlib
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.exceptions import SimulationError
from .cache import point_key, stable_hash

__all__ = [
    "Sweep",
    "grid_sweep",
    "zip_sweep",
    "random_sweep",
    "Campaign",
    "CampaignPoint",
    "resolve_task",
    "retry_seed",
    "task_ref",
]


@dataclass(frozen=True)
class Sweep:
    """An ordered set of parameter points (each a plain dict).

    Build with the module helpers rather than directly:

        >>> sweep = grid_sweep(epsilon=[0.01, 0.1], n_steps=[4, 8])
        >>> len(sweep)
        4
    """

    points: tuple[dict[str, Any], ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.points)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.points[index]

    def __add__(self, other: "Sweep") -> "Sweep":
        """Concatenate two sweeps (duplicate points are kept)."""
        return Sweep(self.points + other.points)


def _check_axes(axes: Mapping[str, Sequence[Any]]) -> dict[str, list[Any]]:
    if not axes:
        raise SimulationError("a sweep needs at least one axis")
    out: dict[str, list[Any]] = {}
    for name, values in axes.items():
        values = list(values)
        if not values:
            raise SimulationError(f"axis {name!r} has no values")
        out[name] = values
    return out


def grid_sweep(**axes: Sequence[Any]) -> Sweep:
    """Cartesian product of the named axes (row-major, first axis slowest).

    Args:
        **axes: ``name=[value, ...]`` pairs.
    """
    checked = _check_axes(axes)
    points: list[dict[str, Any]] = [{}]
    for name, values in checked.items():
        points = [{**point, name: value} for point in points for value in values]
    return Sweep(tuple(points))


def zip_sweep(**axes: Sequence[Any]) -> Sweep:
    """Lock-step pairing of equal-length axes (like :func:`zip`).

    Args:
        **axes: ``name=[value, ...]`` pairs, all the same length.
    """
    checked = _check_axes(axes)
    lengths = {name: len(values) for name, values in checked.items()}
    if len(set(lengths.values())) != 1:
        raise SimulationError(f"zip_sweep axes differ in length: {lengths}")
    names = list(checked)
    return Sweep(
        tuple(dict(zip(names, combo)) for combo in zip(*checked.values()))
    )


def random_sweep(n_points: int, seed: int = 0, **specs: Any) -> Sweep:
    """Seeded random sampling over parameter axes.

    Each axis spec is one of:

    * ``(lo, hi)`` — uniform float on ``[lo, hi)``;
    * ``(lo, hi, "log")`` — log-uniform float on ``[lo, hi)``;
    * ``(lo, hi, "int")`` — uniform integer on ``[lo, hi)``;
    * a list — uniform choice from the listed values.

    Sampling is fully determined by ``seed`` (and the axis order given),
    so the same call always yields the same sweep.

    Args:
        n_points: number of points to draw.
        seed: sampling seed.
        **specs: per-axis sampling specs.
    """
    if n_points < 1:
        raise SimulationError("need at least one random point")
    if not specs:
        raise SimulationError("a sweep needs at least one axis")
    rng = np.random.default_rng(seed)
    columns: dict[str, list[Any]] = {}
    for name, spec in specs.items():
        if isinstance(spec, list):
            if not spec:
                raise SimulationError(f"axis {name!r} has no values")
            idx = rng.integers(0, len(spec), size=n_points)
            columns[name] = [spec[int(i)] for i in idx]
        elif isinstance(spec, tuple) and len(spec) in (2, 3):
            lo, hi = float(spec[0]), float(spec[1])
            mode = spec[2] if len(spec) == 3 else "uniform"
            if mode == "log":
                if lo <= 0 or hi <= 0:
                    raise SimulationError(f"log axis {name!r} needs positive bounds")
                draws = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_points))
                columns[name] = [float(v) for v in draws]
            elif mode == "int":
                draws = rng.integers(int(spec[0]), int(spec[1]), size=n_points)
                columns[name] = [int(v) for v in draws]
            elif mode == "uniform":
                draws = rng.uniform(lo, hi, size=n_points)
                columns[name] = [float(v) for v in draws]
            else:
                raise SimulationError(f"unknown sampling mode {mode!r}")
        else:
            raise SimulationError(
                f"axis {name!r}: expected (lo, hi[, mode]) or a value list"
            )
    names = list(columns)
    return Sweep(
        tuple({name: columns[name][i] for name in names} for i in range(n_points))
    )


def task_ref(task: str | Callable[..., Any]) -> str:
    """Canonical ``"module:function"`` reference of a campaign task.

    Args:
        task: either a reference string (validated by resolving it) or a
            module-level callable (its import path is derived and checked
            to round-trip, so worker processes are guaranteed to find it).
    """
    if isinstance(task, str):
        resolve_task(task)  # validate eagerly: fail at build, not in a worker
        return task
    ref = f"{task.__module__}:{task.__qualname__}"
    if resolve_task(ref) is not task:
        raise SimulationError(
            f"task {task!r} is not importable as {ref!r} — campaign tasks "
            f"must be module-level functions"
        )
    return ref


def resolve_task(ref: str) -> Callable[..., Any]:
    """Import the callable named by a ``"module:function"`` reference."""
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise SimulationError(
            f"task reference {ref!r} is not of the form 'module:function'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SimulationError(f"cannot import task module {module_name!r}: {exc}")
    obj: Any = module
    for part in attr.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise SimulationError(f"module {module_name!r} has no task {attr!r}")
    if not callable(obj):
        raise SimulationError(f"task {ref!r} is not callable")
    return obj


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-resolved unit of campaign work.

    Attributes:
        index: position in the campaign's deterministic point order.
        params: merged parameter dict (base params overridden by the
            sweep point's values).
        seed: the point's spawned seed (``None`` for unseeded campaigns).
        key: content-hash cache key (stable across processes).
    """

    index: int
    params: dict[str, Any]
    seed: int | None
    key: str


@dataclass(frozen=True)
class Campaign:
    """A declarative batch of task evaluations.

    Attributes:
        task: module-level function reference (``"module:function"`` or
            the function itself).  The task is called as
            ``task(**params)``; seeded campaigns additionally inject a
            ``seed=<int>`` keyword (unless the params already carry one).
            Return values must be JSON-representable (numbers, strings,
            lists, dicts, numpy scalars/arrays) so they can be cached and
            checkpointed.
        sweep: the parameter points.
        name: label used in checkpoints and reports.
        base_params: parameters shared by every point (a sweep value with
            the same name wins).
        seed: root seed; per-point seeds are spawned from it so results
            do not depend on execution order.  ``None`` disables seed
            injection (deterministic tasks).
        version: bumped manually to invalidate cached results when the
            task's *implementation* changes without its signature changing.
        target_error: default error-budget contract for executions of
            this campaign — the executor re-runs points whose tracked
            truncation/purification error exceeds it, with escalated
            caps (see :meth:`repro.exec.CampaignExecutor.submit`).
            Deliberately *not* part of any point's cache key: the
            contract governs how points are executed, not what they
            compute.
    """

    task: str | Callable[..., Any]
    sweep: Sweep
    name: str = "campaign"
    base_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = 0
    version: str = "1"
    target_error: float | None = None

    def __len__(self) -> int:
        return len(self.sweep)

    @property
    def task_reference(self) -> str:
        """Canonical importable task reference."""
        return task_ref(self.task)

    def points(self) -> list[CampaignPoint]:
        """Resolve the sweep into hashable, seeded campaign points.

        A point's seed is spawned from a :class:`~numpy.random.SeedSequence`
        keyed on ``(campaign.seed, stable_hash(params))`` — it depends only
        on the root seed and the point's *content*, never on its position,
        execution order, worker layout, or process boundary.  Two
        campaigns sharing a root seed therefore assign the *same* seed
        (and the same cache key) to the same parameter point even when
        their sweeps differ in shape, which is what lets an adaptive
        bisection reuse points a broad sweep already computed.
        """
        ref = self.task_reference
        out: list[CampaignPoint] = []
        for index, values in enumerate(self.sweep):
            params = {**dict(self.base_params), **values}
            # A 'seed' pinned in the params wins over spawning (the runner
            # never injects in that case), and the spawned value must then
            # stay out of the cache key too — otherwise identical
            # computations under different root seeds would miss each
            # other's cached results.
            seed = (
                _point_seed(self.seed, params)
                if self.seed is not None and "seed" not in params
                else None
            )
            out.append(
                CampaignPoint(
                    index=index,
                    params=params,
                    seed=seed,
                    key=point_key(ref, self.version, params, seed),
                )
            )
        return out


def _point_seed(root: int, params: Mapping[str, Any]) -> int:
    """Content-keyed seed spawn: depends only on (root, params)."""
    entropy = int(stable_hash(dict(params))[:16], 16)
    child = np.random.SeedSequence([int(root) & (2**63 - 1), entropy])
    return int(child.generate_state(2, np.uint64)[0])


def retry_seed(point: CampaignPoint, attempt: int) -> int:
    """Deterministic per-``(point, attempt)`` seed for retry machinery.

    Used for backoff jitter (:meth:`repro.exec.FailurePolicy.backoff_delay`)
    and available to fault-injection schedules.  Deliberately *distinct*
    from the point's task seed: a retried execution must reuse the
    original spawned seed bit-for-bit (so recovered results equal the
    serial run), while the retry machinery still needs decorrelated
    randomness per attempt.  Depends only on the point's content key and
    the attempt number — never on wall-clock or process identity.

    Args:
        point: the resolved campaign point.
        attempt: 1-based execution attempt.

    Returns:
        A 63-bit seed, stable across processes and runs.
    """
    entropy = int(point.key[:16], 16)
    child = np.random.SeedSequence([entropy, int(attempt)])
    return int(child.generate_state(1, np.uint64)[0]) & (2**63 - 1)
