"""Persistent campaign execution: supervised workers and streaming results.

:func:`~repro.exec.runner.run_campaign` answers "run this sweep"; this
module answers "run *many* sweeps, fast, fault-tolerantly, and let me
consume points as they finish".  A :class:`CampaignExecutor` keeps one
warm pool of **supervised worker processes** alive across any number of
:meth:`~CampaignExecutor.submit` calls, so a battery of short campaigns
pays the fork + import cost once instead of per campaign.  Each
submission returns a :class:`CampaignHandle` exposing three consumption
styles:

* :meth:`~CampaignHandle.as_completed` — :class:`PointResult` events in
  completion order (cache and checkpoint hits first — they short-circuit
  before anything is dispatched to the pool);
* :meth:`~CampaignHandle.stream_results` — plain values in **point
  order**, each yielded as soon as it is available, so an adaptive
  caller (a bisection, an early-stopping battery) can act on point ``i``
  while points ``i+1..n`` are still running;
* :meth:`~CampaignHandle.result` — block until every point is done and
  return the familiar :class:`CampaignResult`.

All three observe the exact same values: per-point seeds are spawned
from campaign content (never a shared stream), so serial, parallel, and
streamed executions are bit-identical, and ``result()`` always reports
deterministic point order.

**Supervision.**  Unlike an opaque ``multiprocessing.Pool``, dispatch is
per point to workers the executor owns outright: each worker holds at
most one point, over its own duplex pipe, and the supervisor multiplexes
result pipes *and process sentinels* in one ``connection.wait`` call.  A
worker that dies mid-point (segfault, OOM kill, ``os._exit``) is
detected immediately, respawned, and its in-flight point re-dispatched —
because the point's seed is content-spawned, the recovered value is
bit-identical to an undisturbed run.  Per-point timeouts, retries with
deterministic backoff, and structured error records are governed by the
submission's :class:`~repro.exec.policy.FailurePolicy`; resilience
counters (``respawns`` / ``retries`` / ``timeouts``) surface in
:attr:`CampaignExecutor.stats`.  Deterministic fault injection for all
of this lives in :mod:`repro.exec.faults`.

Abandoning a handle early (breaking out of a stream) is safe: points
already dispatched finish in the background and their results are
discarded; points never consumed are simply not cached or checkpointed.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
import json
import multiprocessing
import os
import platform
import signal
import sys
import threading
import time
import traceback
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, NamedTuple

import numpy as np

from ..core import budget as _budget
from ..core.exceptions import SimulationError
from ..obs import metrics as _metrics
from ..obs import profiling as _profiling
from ..obs import tracing as _tracing
from ..obs.ledger import RunLedger
from ..obs.serve import ObsServer
from .cache import MISS, ResultCache, stable_hash
from .policy import FailurePolicy
from .sweep import Campaign, CampaignPoint, resolve_task

if TYPE_CHECKING:
    from .faults import FaultPlan

__all__ = [
    "CampaignExecutor",
    "CampaignHandle",
    "CampaignResult",
    "FailurePolicy",
    "PointResult",
    "executor_scope",
    "run_campaign",
    "to_jsonable",
]

#: Distinguishes "argument not given" from an explicit ``None``.
_UNSET: Any = object()

#: One completion event: the point, ("ok", value) or ("error", record),
#: and the point's timeline fields.
_Event = tuple[CampaignPoint, tuple[str, Any], dict[str, Any]]


def to_jsonable(value: Any) -> Any:
    """Normalise a task return value to plain JSON types.

    Numpy scalars become python numbers, numpy arrays and tuples become
    lists, dict keys are stringified where JSON requires it.  Raises for
    values JSON cannot represent (the task should return data, not
    objects).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(item)
        return out
    raise SimulationError(
        f"campaign task returned non-serialisable {type(value).__name__!r}; "
        f"return numbers, strings, lists, dicts, or numpy data"
    )


def _safe_jsonable(value: Any) -> Any:
    """Best-effort JSON view for error records (never raises)."""
    try:
        return to_jsonable(value)
    except SimulationError:
        if isinstance(value, dict):
            return {str(k): _safe_jsonable(v) for k, v in value.items()}
        return repr(value)


def _accepted_overrides(task: Any, overrides: dict[str, Any]) -> dict[str, Any]:
    """The subset of escalation overrides the task can actually accept.

    Escalated caps (``max_bond``/``max_kraus``) are merged into the call
    only when the task's signature takes them (directly or via
    ``**kwargs``) — a task exposing no caps cannot be escalated, and
    forcing unknown keywords on it would turn escalation into a crash.
    """
    try:
        parameters = inspect.signature(task).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C tasks
        return dict(overrides)
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(overrides)
    return {k: v for k, v in overrides.items() if k in parameters}


def _call_task(
    task_ref: str, point: CampaignPoint, overrides: dict[str, Any] | None = None
) -> Any:
    """Execute one point's task with its seed injected.

    ``overrides`` are escalated-cap keyword overrides from the error
    budget supervisor.  They are merged over ``point.params`` at call
    time only — the point itself (params, seed, cache key) is never
    mutated, so escalation cannot perturb content-addressed identity.
    """
    task = resolve_task(task_ref)
    params = dict(point.params)
    if point.seed is not None and "seed" not in params:
        params["seed"] = point.seed
    if overrides:
        params.update(_accepted_overrides(task, overrides))
    return to_jsonable(task(**params))


def _execute_point(
    task_ref: str,
    point: CampaignPoint,
    attempt: int,
    faults: FaultPlan | None,
    *,
    in_worker: bool,
    overrides: dict[str, Any] | None = None,
) -> Any:
    """One attempt at one point, with any scheduled fault injected first."""
    if faults is not None:
        faults.apply(point, attempt, in_worker=in_worker)
    if _profiling.enabled:
        # One wrap point covers workers and the serial path alike; the
        # raw profile lands in the process-local buffer, shipped (or
        # consumed) exactly like metric deltas.
        with _profiling.profiled():
            return _call_task(task_ref, point, overrides)
    return _call_task(task_ref, point, overrides)


def _escalated_caps(
    account: dict[str, Any] | None,
    previous: dict[str, Any] | None,
    target_error: float,
) -> dict[str, Any] | None:
    """Cap overrides for re-running a point that blew its error budget.

    ``account`` is the point's :class:`repro.core.budget.ErrorAccount`
    summary from its last execution.  When the tracked truncation +
    purification error exceeds ``target_error``, each *offending* error
    source gets its cap doubled from the largest dimension actually
    observed (so escalation tracks the state the circuit really built,
    not whatever cap the plan guessed).  Returns ``None`` when the point
    met its budget, no truncating backend ran, or doubling changes
    nothing — i.e. whenever a re-run would be pointless.
    """
    if not account:
        return None
    trunc = float(account.get("truncation_error") or 0.0)
    purif = float(account.get("purification_error") or 0.0)
    if trunc + purif <= target_error:
        return None
    bond_events = int(account.get("bond_truncations") or 0)
    kraus_events = int(account.get("kraus_truncations") or 0)
    # When both sources truncated, each owns half the budget; a single
    # offender owns all of it (mirrors the autopilot's planning split).
    share = target_error / 2.0 if (bond_events and kraus_events) else target_error
    new = dict(previous or {})
    if bond_events and trunc > share:
        prev = int(new.get("max_bond") or 0)
        new["max_bond"] = max(2 * int(account.get("max_chi") or 1), 2 * prev)
    if kraus_events and purif > share:
        prev = int(new.get("max_kraus") or 0)
        new["max_kraus"] = max(2 * int(account.get("max_kappa") or 1), 2 * prev)
    if new == (previous or {}):
        return None
    return new


def _describe_error(exc: BaseException) -> dict[str, Any]:
    """JSON-safe summary of an exception (for error records)."""
    return {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__, limit=20)
        ),
    }


def _sync_worker_obs(obs_conf: tuple[bool, bool, bool] | None) -> None:
    """Mirror the supervisor's obs enablement inside a worker process.

    ``obs_conf`` is ``None`` (everything off — the common case, one
    comparison per point) or ``(metrics_on, tracing_on, profiling_on)``;
    flipping the module flags here is what makes the instrumented
    backends record in the worker without any per-call coordination.
    """
    if obs_conf is not None:
        metrics_on, tracing_on, profiling_on = obs_conf
    else:
        metrics_on = tracing_on = profiling_on = False
    if _metrics.enabled != metrics_on:
        _metrics.enable() if metrics_on else _metrics.disable()
    if _tracing.enabled != tracing_on:
        _tracing.enable() if tracing_on else _tracing.disable()
    if _profiling.enabled != profiling_on:
        _profiling.enable() if profiling_on else _profiling.disable()


def _worker_obs_payload(
    started: float, account: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The per-point telemetry piggybacked onto the result reply.

    ``pid``/``exec_s`` are always present (they cost two fields on a
    message the pipe was carrying anyway — this is how timelines work
    with observability off); the point's error account rides along when
    a truncating backend recorded anything; metric deltas and spans only
    when collection is on, drained so the next point starts from zero.
    """
    payload: dict[str, Any] = {"pid": os.getpid(), "exec_s": time.monotonic() - started}
    if account:
        payload["error_account"] = account
    if _metrics.enabled:
        payload["metrics"] = _metrics.REGISTRY.drain()
    if _tracing.enabled:
        payload["spans"] = _tracing.drain()
    if _profiling.enabled:
        payload["profile"] = _profiling.drain()
    return payload


def _worker_main(conn: connection.Connection) -> None:
    """Supervised worker loop (module-level: picklable under spawn).

    Receives ``(uid, task_ref, point, attempt, faults, obs_conf,
    overrides)`` messages over its private duplex pipe, executes, and replies
    ``("ok", uid, value, None, obs)`` or ``("err", uid, info, exception,
    obs)`` where ``obs`` piggybacks the point's telemetry (see
    :func:`_worker_obs_payload`) — the hot path gains no extra syscalls.
    ``None`` is the stop sentinel.  Every task exception is *reported*,
    never fatal to the worker — only a hard death (kill/exit/segfault)
    ends the loop, and the supervisor notices that via the process
    sentinel.
    """
    # Under the fork start method the child inherits the parent's obs
    # state — enabled flags, accumulated counters, buffered spans.  A
    # drained "delta" would then re-ship the parent's samples and the
    # supervisor would double-count them on merge.  Start clean.
    _metrics.disable()
    _tracing.disable()
    _profiling.disable()
    _metrics.REGISTRY.reset()
    _tracing.reset()
    _profiling.reset()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        uid, task_ref, point, attempt, faults, obs_conf, overrides = message
        _sync_worker_obs(obs_conf)
        started = time.monotonic()
        acct = _budget.ErrorAccount()
        try:
            with _budget.scoped(acct):
                if _tracing.enabled:
                    with _tracing.span("point", index=point.index, attempt=attempt):
                        value = _execute_point(
                            task_ref,
                            point,
                            attempt,
                            faults,
                            in_worker=True,
                            overrides=overrides,
                        )
                else:
                    value = _execute_point(
                        task_ref,
                        point,
                        attempt,
                        faults,
                        in_worker=True,
                        overrides=overrides,
                    )
        except BaseException as exc:
            obs = _worker_obs_payload(started, acct.summary())
            info = _describe_error(exc)
            try:
                conn.send(("err", uid, info, exc, obs))
            except Exception:
                try:
                    conn.send(("err", uid, info, None, obs))
                except Exception:
                    break
            continue
        obs = _worker_obs_payload(started, acct.summary())
        try:
            conn.send(("ok", uid, value, None, obs))
        except Exception:
            break
    try:
        conn.close()
    except OSError:
        pass


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign run produced.

    Attributes:
        name: the campaign's label.
        values: one task value per point, ordered by point index
            (``None`` for points that failed under a non-raising policy —
            see ``errors``).
        points: the resolved points (same order).
        cache_hits: points served from the result cache.
        checkpoint_hits: points replayed from the checkpoint file.
        computed: points actually executed this run (failed ones
            included).
        workers: pool width used (1 = serial).
        duration_s: wall-clock time of the run.
        errors: structured error records for points that terminally
            failed under a ``"continue"``/``"retry"`` policy, in point
            order; each carries the point's index/key/params/seed, the
            failure ``kind`` (``"exception"`` / ``"crash"`` /
            ``"timeout"``), the attempt and crash counts, the cumulative
            retry-backoff slept for the point (``backoff_s``), and the
            error type/message (+ traceback for exceptions).
        timeline: one record per resolved point, in point order — always
            collected (the fields ride the result pipe the point already
            used, so they cost nothing extra).  Hits carry ``{"index",
            "source"}``; computed points add ``queue_wait_s`` (submit →
            first dispatch), ``exec_s`` (in-worker execution, summed
            over attempts), ``backoff_s``, ``attempts``, ``crashes``,
            ``pids`` (worker processes that ran the point),
            ``cache_put_s``, and ``ok``.
    """

    name: str
    values: list[Any]
    points: list[CampaignPoint]
    cache_hits: int
    checkpoint_hits: int
    computed: int
    workers: int
    duration_s: float
    errors: list[dict[str, Any]] = field(default_factory=list)
    timeline: list[dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def ok(self) -> bool:
        """Whether every point produced a value (no error records)."""
        return not self.errors

    @property
    def hit_fraction(self) -> float:
        """Fraction of points that skipped execution (cache + checkpoint)."""
        if not self.values:
            return 0.0
        return (self.cache_hits + self.checkpoint_hits) / len(self.values)

    def as_table(self) -> list[dict[str, Any]]:
        """Per-point records ``{**params, "seed", "value", "ok"}``."""
        failed = {record["index"] for record in self.errors}
        return [
            {
                **point.params,
                "seed": point.seed,
                "value": value,
                "ok": point.index not in failed,
            }
            for point, value in zip(self.points, self.values)
        ]


class PointResult(NamedTuple):
    """One completed campaign point, as seen by a streaming consumer.

    Attributes:
        point: the resolved :class:`CampaignPoint`.
        value: the task's (JSON-normalised) return value (``None`` when
            ``ok`` is false).
        source: ``"cache"``, ``"checkpoint"``, or ``"computed"``.
        ok: whether the point produced a value (``False`` = a terminal
            failure recorded under a non-raising policy).
        error: the structured error record when ``ok`` is false.
    """

    point: CampaignPoint
    value: Any
    source: str
    ok: bool = True
    error: dict[str, Any] | None = None


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
@contextmanager
def _shield_interrupts() -> Iterator[None]:
    """Defer ``SIGINT`` for the duration of the block (main thread only).

    Used around checkpoint appends so a ``KeyboardInterrupt`` can never
    tear the final record: the interrupt is re-delivered (or re-raised)
    immediately *after* the write completes.  Off the main thread —
    where Python never delivers SIGINT anyway — this is a no-op.
    """
    try:
        in_main = threading.current_thread() is threading.main_thread()
        previous = signal.getsignal(signal.SIGINT) if in_main else None
    except ValueError:  # pragma: no cover - exotic embedding
        in_main = False
    if not in_main or previous is None:
        yield
        return
    received: list[tuple[int, Any]] = []

    def _defer(signum: int, frame: Any) -> None:
        received.append((signum, frame))

    try:
        signal.signal(signal.SIGINT, _defer)
    except ValueError:  # pragma: no cover - not actually the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)
        if received:
            if callable(previous):
                previous(*received[0])
            else:  # pragma: no cover - SIG_IGN/SIG_DFL stand-ins
                raise KeyboardInterrupt


def _load_checkpoint(path: Path) -> dict[str, object]:
    """Replay a JSON-lines checkpoint, skipping corrupt/partial lines.

    A crash mid-append leaves at most one truncated trailing line; a
    corrupted file may contain arbitrary garbage.  Either way every
    well-formed line is recovered and the rest are recomputed — the
    checkpoint can only ever *save* work, never wedge a campaign.

    Records are status-tagged: only ``"ok"`` records (and legacy
    untagged ones) replay.  ``"error"`` records are deliberately *not*
    treated as done — a resume retries transient failures while
    replaying successes verbatim.
    """
    done: dict[str, object] = {}
    try:
        text = path.read_text()
    except (FileNotFoundError, OSError):
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if record.get("status", "ok") != "ok":
                continue
            done[record["key"]] = record["value"]
        except (ValueError, KeyError, TypeError, AttributeError):
            continue
    return done


def _append_checkpoint(
    handle: IO[str],
    point: CampaignPoint,
    value: Any = None,
    *,
    status: str = "ok",
    error: Any = None,
) -> None:
    """Append one status-tagged record, shielded against interrupts."""
    record: dict[str, Any] = {"key": point.key, "index": point.index, "status": status}
    if status == "ok":
        record["value"] = value
    else:
        record["error"] = error
    line = json.dumps(record) + "\n"
    with _shield_interrupts():
        handle.write(line)
        handle.flush()


# ----------------------------------------------------------------------
# supervised worker pool
# ----------------------------------------------------------------------
def _spawn_worker_process(ctx: Any) -> tuple[Any, Any]:
    """Fork one supervised worker; returns ``(process, parent_conn)``."""
    parent, child = ctx.Pipe(duplex=True)
    process = ctx.Process(target=_worker_main, args=(child,), daemon=True)
    process.start()
    child.close()
    return process, parent


class _Worker:
    """One supervised worker process and its private duplex pipe."""

    __slots__ = ("process", "conn", "item", "deadline")

    def __init__(self, ctx: Any) -> None:
        self.process, self.conn = _spawn_worker_process(ctx)
        #: ``(run, dispatch, uid)`` while busy, else ``None``.
        self.item: tuple[_SupervisedRun, _Dispatch, int] | None = None
        #: ``time.monotonic()`` deadline for the in-flight point.
        self.deadline: float | None = None


class _Dispatch:
    """One point's execution lifecycle inside a supervised run."""

    __slots__ = (
        "point",
        "tries",
        "failures",
        "crashes",
        "created",
        "first_sent",
        "backoff_s",
        "exec_s",
        "pids",
        "escalations",
        "overrides",
        "account",
    )

    def __init__(self, point: CampaignPoint) -> None:
        self.point = point
        self.tries = 0  # executions started (failures + crashes + successes)
        self.failures = 0  # completed attempts that raised or timed out
        self.crashes = 0  # worker deaths while this point was in flight
        self.created = time.monotonic()  # when the point entered the queue
        self.first_sent: float | None = None  # first dispatch to a worker
        self.backoff_s = 0.0  # cumulative retry-backoff slept
        self.exec_s = 0.0  # in-worker execution time, summed over attempts
        self.pids: list[int] = []  # worker processes that ran the point
        self.escalations = 0  # error-budget cap escalations (re-dispatches)
        self.overrides: dict[str, Any] | None = None  # escalated cap kwargs
        self.account: dict[str, Any] | None = None  # last error account

    def meta(self) -> dict[str, Any]:
        """The point's timeline fields (supervisor-side view)."""
        sent = self.first_sent if self.first_sent is not None else self.created
        out: dict[str, Any] = {
            "queue_wait_s": max(0.0, sent - self.created),
            "exec_s": self.exec_s,
            "backoff_s": self.backoff_s,
            "attempts": self.tries,
            "crashes": self.crashes,
            "pids": list(self.pids),
            "escalations": self.escalations,
        }
        if self.account:
            out.update(self.account)
        return out


class _SupervisedRun:
    """The supervisor-side state of one submitted campaign."""

    def __init__(
        self,
        pool: _SupervisedPool,
        task_ref: str,
        pending: Iterable[CampaignPoint],
        policy: FailurePolicy,
        faults: FaultPlan | None,
        target_error: float | None = None,
    ) -> None:
        self.pool = pool
        self.task_ref = task_ref
        self.policy = policy
        self.faults = faults
        self.target_error = target_error
        self.ready: deque[_Dispatch] = deque(_Dispatch(p) for p in pending)
        #: heap of (ready_at, seq, dispatch) backoff waits.
        self.waiting: list[tuple[float, int, _Dispatch]] = []
        self.inflight = 0
        #: (point, ("ok", value) | ("error", rec), meta) triples.
        self.events: deque[_Event] = deque()
        self.failure: BaseException | None = None
        self.abandoned = False
        #: point.index -> executions started (for retry-budget assertions).
        self.attempts: dict[int, int] = {}

    @property
    def outstanding(self) -> bool:
        return bool(self.ready or self.waiting or self.inflight)

    def abandon(self) -> None:
        """Stop scheduling; in-flight completions will be discarded."""
        self.abandoned = True
        self.ready.clear()
        self.waiting.clear()


class _SupervisedPool:
    """A fixed-width pool of supervised workers with per-point dispatch.

    The supervisor owns every worker process and its pipe.  Dispatch is
    one point per worker; progress is pumped from the consuming thread:
    each :meth:`next_event` call dispatches ready work, then waits on
    all busy workers' result pipes *and* process sentinels at once, so a
    result, a worker death, a point deadline, or a matured retry backoff
    — whichever happens first — wakes the supervisor.  Dead workers are
    respawned and their in-flight point re-dispatched under the run's
    :class:`FailurePolicy`; overdue points get their worker killed and
    respawned.  Many runs may be live at once: events for runs other
    than the one being pumped accumulate on their own queues.
    """

    def __init__(self, ctx: Any, width: int, counters: dict[str, int]) -> None:
        self._ctx = ctx
        self._counters = counters
        self._workers = [_Worker(ctx) for _ in range(width)]
        self._runs: list[_SupervisedRun] = []
        self._uids = itertools.count()
        self._seq = itertools.count()

    # -- public surface ------------------------------------------------
    def submit(
        self,
        task_ref: str,
        pending: Iterable[CampaignPoint],
        policy: FailurePolicy,
        faults: FaultPlan | None,
        target_error: float | None = None,
    ) -> _SupervisedRun:
        run = _SupervisedRun(self, task_ref, pending, policy, faults, target_error)
        self._runs.append(run)
        self._dispatch()
        return run

    def next_event(self, run: _SupervisedRun) -> _Event | None:
        """The run's next completion event, pumping the pool as needed.

        Returns ``(point, outcome, meta)`` with ``outcome`` either
        ``("ok", value)`` or ``("error", record)`` and ``meta`` the
        point's timeline fields (:meth:`_Dispatch.meta`); ``None`` when
        the run is complete.  Raises the failing exception for a
        ``fail_fast`` run (after already-queued events have drained).
        """
        while True:
            if run.events:
                return run.events.popleft()
            if run.failure is not None:
                exc = run.failure
                self._forget(run)
                raise exc
            if not run.outstanding:
                self._forget(run)
                return None
            self._pump()

    @property
    def idle(self) -> bool:
        """Whether no worker holds an in-flight point."""
        return all(worker.item is None for worker in self._workers)

    def worker_processes(self) -> list[Any]:
        """The live worker process objects (for tests/diagnostics)."""
        return [worker.process for worker in self._workers]

    def shutdown(self, timeout: float = 5.0) -> bool:
        """Tear the pool down; graceful when nothing is in flight.

        With every worker idle and no run holding undelivered work, each
        worker receives the stop sentinel and is joined within
        ``timeout`` — a clean exit that never aborts anything.  Any
        other state (an abandoned stream's points still running) falls
        back to terminate.  Returns whether the drain was graceful.
        """
        graceful = self.idle and not any(run.outstanding for run in self._runs)
        if graceful:
            for worker in self._workers:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + max(0.0, timeout)
            for worker in self._workers:
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    graceful = False
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
                if worker.process.is_alive():  # pragma: no cover - stubborn
                    worker.process.kill()
                    worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        self._runs = []
        return graceful

    # -- scheduling ----------------------------------------------------
    def _forget(self, run: _SupervisedRun) -> None:
        if run in self._runs:
            self._runs.remove(run)

    def _release_waiting(self) -> None:
        now = time.monotonic()
        for run in self._runs:
            while run.waiting and run.waiting[0][0] <= now:
                _, _, dispatch = heapq.heappop(run.waiting)
                run.ready.append(dispatch)

    def _next_ready(self) -> tuple[_SupervisedRun, _Dispatch] | None:
        for run in self._runs:
            if run.abandoned or run.failure is not None:
                continue
            if run.ready:
                return run, run.ready.popleft()
        return None

    def _dispatch(self) -> None:
        self._release_waiting()
        for worker in self._workers:
            if worker.item is not None:
                continue
            picked = self._next_ready()
            if picked is None:
                return
            run, dispatch = picked
            self._send(worker, run, dispatch)

    def _send(
        self, worker: _Worker, run: _SupervisedRun, dispatch: _Dispatch
    ) -> None:
        while True:
            dispatch.tries += 1
            run.attempts[dispatch.point.index] = dispatch.tries
            uid = next(self._uids)
            obs_conf = (
                (_metrics.enabled, _tracing.enabled, _profiling.enabled)
                if (_metrics.enabled or _tracing.enabled or _profiling.enabled)
                else None
            )
            try:
                worker.conn.send(
                    (
                        uid,
                        run.task_ref,
                        dispatch.point,
                        dispatch.tries,
                        run.faults,
                        obs_conf,
                        dispatch.overrides,
                    )
                )
            except (OSError, ValueError):
                # The worker died while idle (or its pipe tore): the
                # dispatch never reached it — roll the attempt back,
                # respawn, and try again on the fresh process.
                dispatch.tries -= 1
                run.attempts[dispatch.point.index] = dispatch.tries
                self._respawn(worker)
                continue
            if dispatch.first_sent is None:
                dispatch.first_sent = time.monotonic()
            pid = worker.process.pid
            if pid is not None and pid not in dispatch.pids:
                dispatch.pids.append(pid)
            if _metrics.enabled:
                _metrics.inc("exec_dispatches")
                _metrics.inc("exec_attempts")
            worker.item = (run, dispatch, uid)
            worker.deadline = (
                time.monotonic() + run.policy.timeout
                if run.policy.timeout is not None
                else None
            )
            run.inflight += 1
            return

    def _next_backoff_delta(self, now: float) -> float | None:
        ready_ats = [run.waiting[0][0] for run in self._runs if run.waiting]
        if not ready_ats:
            return None
        return max(0.0, min(ready_ats) - now)

    # -- the pump ------------------------------------------------------
    def _pump(self) -> None:
        """One supervision step: dispatch, wait, classify, recover."""
        self._dispatch()
        now = time.monotonic()
        busy = [worker for worker in self._workers if worker.item is not None]
        if not busy:
            # Nothing in flight: the only possible progress is a retry
            # backoff maturing.  Sleep until the earliest one.
            delay = self._next_backoff_delta(now)
            if delay is None:  # pragma: no cover - guarded by next_event
                raise SimulationError("supervised pool pumped with no work")
            time.sleep(min(delay + 1e-4, 0.05))
            self._dispatch()
            return
        horizons = [worker.deadline for worker in busy if worker.deadline is not None]
        backoff = self._next_backoff_delta(now)
        if backoff is not None:
            horizons.append(now + backoff)
        timeout = max(0.0, min(horizons) - now) if horizons else None
        by_object: dict[Any, _Worker] = {}
        wait_on: list[Any] = []
        for worker in busy:
            by_object[worker.conn] = worker
            by_object[worker.process.sentinel] = worker
            wait_on.extend((worker.conn, worker.process.sentinel))
        ready = connection.wait(wait_on, timeout)
        woken: list[_Worker] = []
        seen: set[int] = set()
        for obj in ready:
            worker = by_object[obj]
            if id(worker) not in seen:
                seen.add(id(worker))
                woken.append(worker)
        for worker in woken:
            if worker.item is None:
                continue
            # A message beats a death verdict: a worker that finished its
            # point and *then* died (kill fault landing between points)
            # still delivers the finished result.
            if worker.conn.poll():
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._on_crash(worker)
                    continue
                self._on_message(worker, message)
            elif not worker.process.is_alive():
                self._on_crash(worker)
        now = time.monotonic()
        for worker in self._workers:
            if (
                worker.item is not None
                and worker.deadline is not None
                and now >= worker.deadline
            ):
                self._on_timeout(worker)
        self._dispatch()

    # -- outcome handling ----------------------------------------------
    def _release(self, worker: _Worker) -> tuple[_SupervisedRun, _Dispatch, int]:
        assert worker.item is not None  # only called for busy workers
        run, dispatch, uid = worker.item
        worker.item = None
        worker.deadline = None
        run.inflight -= 1
        return run, dispatch, uid

    def _absorb_obs(self, dispatch: _Dispatch, obs: dict[str, Any]) -> None:
        """Fold a worker's piggybacked telemetry into supervisor state."""
        dispatch.exec_s += float(obs.get("exec_s", 0.0))
        # Latest execution wins: an escalated re-run's (smaller) account
        # replaces the blown one, so timelines report the delivered error.
        dispatch.account = obs.get("error_account")
        pid = obs.get("pid")
        if pid is not None and pid not in dispatch.pids:
            dispatch.pids.append(pid)
        snap = obs.get("metrics")
        if snap:
            _metrics.REGISTRY.merge(snap)
        spans = obs.get("spans")
        if spans:
            _tracing.add_events(spans)
        profiles = obs.get("profile")
        if profiles:
            _profiling.add_raw(profiles)

    def _on_message(self, worker: _Worker, message: tuple[Any, ...]) -> None:
        kind, uid, payload, exc, obs = message
        run, dispatch, expected = self._release(worker)
        if uid != expected or run.abandoned:
            return
        if obs:
            self._absorb_obs(dispatch, obs)
        if kind == "ok":
            if self._maybe_escalate(run, dispatch):
                return
            run.events.append((dispatch.point, ("ok", payload), dispatch.meta()))
        else:
            self._on_failed_attempt(run, dispatch, "exception", payload, exc)

    def _maybe_escalate(self, run: _SupervisedRun, dispatch: _Dispatch) -> bool:
        """Re-dispatch a successful point whose error blew its budget.

        Only runs with a ``target_error`` contract escalate; the count
        is bounded by the policy's ``max_escalations``, after which the
        best delivered result stands (the timeline's flattened error
        account shows by how much it missed).
        """
        if run.target_error is None:
            return False
        if dispatch.escalations >= run.policy.max_escalations:
            return False
        caps = _escalated_caps(dispatch.account, dispatch.overrides, run.target_error)
        if caps is None:
            return False
        dispatch.escalations += 1
        dispatch.overrides = caps
        self._counters["escalations"] += 1
        if _metrics.enabled:
            _metrics.inc("exec_escalations")
        # Head of the queue, like crash recovery: escalation must not
        # cost the point its scheduling priority.
        run.ready.appendleft(dispatch)
        return True

    def _on_crash(self, worker: _Worker) -> None:
        run, dispatch, _uid = self._release(worker)
        exitcode = worker.process.exitcode
        self._respawn(worker)
        if run.abandoned:
            return
        dispatch.crashes += 1
        if _metrics.enabled:
            _metrics.inc("exec_crashes")
        if dispatch.crashes <= run.policy.max_crashes:
            # Re-dispatch at the head of the queue: the point loses no
            # scheduling priority to its worker's death.
            run.ready.appendleft(dispatch)
            return
        info = {
            "error_type": "WorkerCrashError",
            "message": (
                f"worker process died (exit code {exitcode}) with point "
                f"{dispatch.point.index} in flight, {dispatch.crashes} "
                f"deaths total (max_crashes={run.policy.max_crashes})"
            ),
            "traceback": None,
        }
        self._terminal_failure(run, dispatch, "crash", info, None)

    def _on_timeout(self, worker: _Worker) -> None:
        run, dispatch, _uid = self._release(worker)
        self._counters["timeouts"] += 1
        if _metrics.enabled:
            _metrics.inc("exec_timeouts")
        worker.process.terminate()
        worker.process.join(1.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(1.0)
        self._respawn(worker)
        if run.abandoned:
            return
        info = {
            "error_type": "PointTimeoutError",
            "message": (
                f"point {dispatch.point.index} exceeded its "
                f"{run.policy.timeout}s per-point timeout"
            ),
            "traceback": None,
        }
        self._on_failed_attempt(run, dispatch, "timeout", info, None)

    def _on_failed_attempt(
        self,
        run: _SupervisedRun,
        dispatch: _Dispatch,
        kind: str,
        info: dict[str, Any],
        exc: BaseException | None,
    ) -> None:
        """A completed attempt raised or timed out: retry or terminalise."""
        dispatch.failures += 1
        policy = run.policy
        if policy.mode == "retry" and dispatch.failures < policy.max_attempts:
            self._counters["retries"] += 1
            if _metrics.enabled:
                _metrics.inc("exec_retries")
            delay = policy.backoff_delay(dispatch.point, dispatch.tries)
            dispatch.backoff_s += delay
            heapq.heappush(
                run.waiting,
                (time.monotonic() + delay, next(self._seq), dispatch),
            )
            return
        self._terminal_failure(run, dispatch, kind, info, exc)

    def _terminal_failure(
        self,
        run: _SupervisedRun,
        dispatch: _Dispatch,
        kind: str,
        info: dict[str, Any],
        exc: BaseException | None,
    ) -> None:
        if run.policy.mode == "fail_fast":
            run.failure = (
                exc
                if exc is not None
                else SimulationError(
                    f"campaign point {dispatch.point.index} failed "
                    f"({kind}): {info['message']}"
                )
            )
            run.abandon()
            return
        run.events.append(
            (
                dispatch.point,
                ("error", _error_record(dispatch, kind, info)),
                dispatch.meta(),
            )
        )

    def _respawn(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
            worker.process.join(1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
        worker.process, worker.conn = _spawn_worker_process(self._ctx)
        worker.item = None
        worker.deadline = None
        self._counters["respawns"] += 1
        if _metrics.enabled:
            _metrics.inc("exec_respawns")


def _error_record(
    dispatch: _Dispatch, kind: str, info: dict[str, Any]
) -> dict[str, Any]:
    """The structured, JSON-safe record of one point's terminal failure."""
    point = dispatch.point
    return {
        "index": point.index,
        "key": point.key,
        "params": _safe_jsonable(point.params),
        "seed": point.seed,
        "kind": kind,
        "attempts": dispatch.failures,
        "crashes": dispatch.crashes,
        "backoff_s": dispatch.backoff_s,
        "error_type": info.get("error_type"),
        "message": info.get("message"),
        "traceback": info.get("traceback"),
    }


def _serial_error_record(
    point: CampaignPoint,
    kind: str,
    info: dict[str, Any],
    failures: int,
    backoff_s: float = 0.0,
) -> dict[str, Any]:
    dispatch = _Dispatch(point)
    dispatch.failures = failures
    dispatch.backoff_s = backoff_s
    return _error_record(dispatch, kind, info)


def _serial_events(
    task_ref: str,
    pending: Iterable[CampaignPoint],
    policy: FailurePolicy,
    faults: FaultPlan | None,
    counters: dict[str, int],
    attempts: dict[int, int],
    target_error: float | None = None,
) -> Iterator[_Event]:
    """In-process execution honouring the failure policy (no timeouts).

    Yields ``(point, outcome, meta)`` like the supervised pool.  Kill
    faults are skipped (never kill the host process); retry backoff
    sleeps deterministically; error-budget escalation re-runs points
    with the same cap schedule as the supervised pool, so serial and
    parallel escalated campaigns stay bit-identical.  Telemetry needs no
    piggybacking here — the task runs in the consumer's own process, so
    instrumented code records straight into the live registry and trace
    buffer.
    """
    pid = os.getpid()
    for point in pending:
        failures = 0
        backoff = 0.0
        exec_s = 0.0
        executions = 0
        escalations = 0
        overrides: dict[str, Any] | None = None
        while True:
            attempt = failures + 1
            executions += 1
            attempts[point.index] = executions
            if _metrics.enabled:
                _metrics.inc("exec_attempts")
            started = time.monotonic()
            acct = _budget.ErrorAccount()
            try:
                with _budget.scoped(acct):
                    if _tracing.enabled:
                        with _tracing.span(
                            "point", index=point.index, attempt=attempt
                        ):
                            value = _execute_point(
                                task_ref,
                                point,
                                attempt,
                                faults,
                                in_worker=False,
                                overrides=overrides,
                            )
                    else:
                        value = _execute_point(
                            task_ref,
                            point,
                            attempt,
                            faults,
                            in_worker=False,
                            overrides=overrides,
                        )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                exec_s += time.monotonic() - started
                failures += 1
                if policy.mode == "retry" and failures < policy.max_attempts:
                    counters["retries"] += 1
                    if _metrics.enabled:
                        _metrics.inc("exec_retries")
                    delay = policy.backoff_delay(point, attempt)
                    backoff += delay
                    time.sleep(delay)
                    continue
                if policy.mode == "fail_fast":
                    raise
                record = _serial_error_record(
                    point, "exception", _describe_error(exc), failures, backoff
                )
                meta = {
                    "queue_wait_s": 0.0,
                    "exec_s": exec_s,
                    "backoff_s": backoff,
                    "attempts": executions,
                    "crashes": 0,
                    "pids": [pid],
                    "escalations": escalations,
                }
                account = acct.summary()
                if account:
                    meta.update(account)
                yield point, ("error", record), meta
                break
            exec_s += time.monotonic() - started
            if target_error is not None and escalations < policy.max_escalations:
                caps = _escalated_caps(acct.summary(), overrides, target_error)
                if caps is not None:
                    escalations += 1
                    overrides = caps
                    counters["escalations"] += 1
                    if _metrics.enabled:
                        _metrics.inc("exec_escalations")
                    continue
            meta = {
                "queue_wait_s": 0.0,
                "exec_s": exec_s,
                "backoff_s": backoff,
                "attempts": executions,
                "crashes": 0,
                "pids": [pid],
                "escalations": escalations,
            }
            account = acct.summary()
            if account:
                meta.update(account)
            yield point, ("ok", value), meta
            break


def _preregister_exec_metrics() -> None:
    """Register the executor's metric families (zero-valued until used).

    Called at submit time when metrics are on, so a run's snapshot
    always *contains* the lifecycle counters — a campaign with no
    respawns reports ``exec_respawns`` at zero rather than omitting it,
    which is what lets consumers sum counters against
    :class:`CampaignResult` without existence checks.
    """
    reg = _metrics.REGISTRY
    reg.counter("exec_submits", "campaign submissions")
    reg.counter("exec_dispatches", "points sent to supervised workers")
    reg.counter("exec_attempts", "point executions started")
    reg.counter("exec_retries", "failed attempts rescheduled by policy")
    reg.counter("exec_crashes", "worker deaths with a point in flight")
    reg.counter("exec_timeouts", "points killed by the per-point deadline")
    reg.counter("exec_escalations", "points re-run with escalated error caps")
    reg.counter("exec_respawns", "worker processes respawned")
    reg.counter("exec_points", "points resolved, by source")
    reg.histogram("exec_point_s", "in-worker execution seconds per point")


class CampaignHandle:
    """A submitted campaign: consume its points as they finish.

    Created by :meth:`CampaignExecutor.submit` — never directly.  The
    handle owns the campaign's bookkeeping (which points were served from
    the cache or checkpoint, which were computed, which failed) and
    exposes the three consumption styles described in the module
    docstring.  All styles share one underlying event stream, so they can
    be mixed freely: a caller may pull a few events from
    :meth:`as_completed`, then call :meth:`result` to drain the rest.
    """

    def __init__(
        self,
        executor: "CampaignExecutor",
        campaign: Campaign,
        points: list[CampaignPoint],
        hits: list[PointResult],
        pending: list[CampaignPoint],
        cache: ResultCache | None,
        checkpoint_path: Path | None,
        run: _SupervisedRun | None,
        policy: FailurePolicy,
        faults: FaultPlan | None,
        start: float,
        fingerprint: str | None = None,
        ledger: RunLedger | None = None,
        target_error: float | None = None,
    ) -> None:
        self._executor = executor
        self._campaign = campaign
        self._points = points
        self._cache = cache
        self._checkpoint_path = checkpoint_path
        self._policy = policy
        self._faults = faults
        # Clock starts when submit() began, so duration_s covers the
        # cache/checkpoint hit resolution too (a fully-cached campaign's
        # cost IS that scan).
        self._start = start
        self._seen: list[PointResult] = []
        self._values: dict[int, Any] = {}
        self._errors: dict[int, dict[str, Any]] = {}
        self._timeline: dict[int, dict[str, Any]] = {}
        self._callbacks: list[Callable[[CampaignPoint, Any], None]] = []
        self._run = run
        self._pool_backed = run is not None
        self._serial_attempts: dict[int, int] = {}
        self._failed: BaseException | None = None
        self._fingerprint = fingerprint
        self._ledger = ledger
        self._target_error = target_error
        self._ledger_written = False
        self._started_at = time.time()
        self.cache_hits = sum(1 for hit in hits if hit.source == "cache")
        self.checkpoint_hits = len(hits) - self.cache_hits
        self.computed = 0
        # Effective pool width: a campaign whose pending work is 0 or 1
        # points runs in-process (reported as serial), exactly like the
        # one-shot runner always did.
        self.workers = executor.workers if run is not None else 1
        self._events = self._event_stream(hits, pending, run)

    @property
    def name(self) -> str:
        """The campaign's label."""
        return self._campaign.name

    @property
    def points(self) -> list[CampaignPoint]:
        """The campaign's resolved points, in deterministic order."""
        return self._points

    @property
    def policy(self) -> FailurePolicy:
        """The failure policy governing this submission."""
        return self._policy

    @property
    def fingerprint(self) -> str | None:
        """Content hash identifying this campaign in the run ledger."""
        return self._fingerprint

    @property
    def errors(self) -> list[dict[str, Any]]:
        """Error records for terminally-failed points (point order)."""
        return [self._errors[index] for index in sorted(self._errors)]

    @property
    def attempts(self) -> dict[int, int]:
        """Executions started per point index (computed points only)."""
        if self._run is not None:
            return dict(self._run.attempts)
        return dict(self._serial_attempts)

    def __len__(self) -> int:
        return len(self._points)

    # -- event production ------------------------------------------------
    def _event_stream(
        self,
        hits: list[PointResult],
        pending: list[CampaignPoint],
        run: _SupervisedRun | None,
    ) -> Iterator[PointResult]:
        """Yield :class:`PointResult` events in completion order.

        Hits are yielded first (they were resolved at submit time, before
        anything touched the pool); computed points follow as the
        supervised pool — or the in-process serial loop — delivers them.
        """
        checkpoint_handle: IO[str] | None = None
        try:
            for hit in hits:
                self._timeline[hit.point.index] = {
                    "index": hit.point.index,
                    "source": hit.source,
                }
                if _metrics.enabled:
                    _metrics.inc("exec_points", source=hit.source)
                yield hit
            if not pending:
                self._write_ledger()
                return
            if self._checkpoint_path is not None:
                self._checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
                checkpoint_handle = self._checkpoint_path.open("a")
            source: Iterable[_Event]
            if run is None:
                source = _serial_events(
                    self._campaign.task_reference,
                    pending,
                    self._policy,
                    self._faults,
                    self._executor._counters,
                    self._serial_attempts,
                    self._target_error,
                )
            else:
                source = iter(lambda: run.pool.next_event(run), None)
            for point, outcome, meta in source:
                if outcome[0] == "ok":
                    value = outcome[1]
                    put_s = self._record(point, value, checkpoint_handle)
                    self._timeline[point.index] = {
                        "index": point.index,
                        "source": "computed",
                        "ok": True,
                        "cache_put_s": put_s,
                        **meta,
                    }
                    if _metrics.enabled:
                        _metrics.inc("exec_points", source="computed")
                        _metrics.observe(
                            "exec_point_s", meta["exec_s"], outcome="ok"
                        )
                    yield PointResult(point, value, "computed")
                else:
                    record = outcome[1]
                    self._record_error(point, record, checkpoint_handle)
                    self._timeline[point.index] = {
                        "index": point.index,
                        "source": "computed",
                        "ok": False,
                        "cache_put_s": None,
                        **meta,
                    }
                    if _metrics.enabled:
                        _metrics.inc("exec_points", source="computed")
                        _metrics.observe(
                            "exec_point_s", meta["exec_s"], outcome="error"
                        )
                    yield PointResult(point, None, "computed", False, record)
            # Reached only when every point resolved: abandoned or failed
            # streams leave no ledger record (a partial run is not a
            # sample the autopilot should ever calibrate against).
            self._write_ledger()
        finally:
            if checkpoint_handle is not None:
                checkpoint_handle.close()

    def _record(
        self, point: CampaignPoint, value: Any, checkpoint_handle: IO[str] | None
    ) -> float | None:
        self.computed += 1
        self._executor._points_computed += 1
        put_s = None
        if self._cache is not None:
            put_started = time.monotonic()
            self._cache.put(point.key, value)
            put_s = time.monotonic() - put_started
        if checkpoint_handle is not None:
            _append_checkpoint(checkpoint_handle, point, value)
        return put_s

    def _record_error(
        self,
        point: CampaignPoint,
        record: dict[str, Any],
        checkpoint_handle: IO[str] | None,
    ) -> None:
        """A terminal failure: never cached, checkpointed as an error."""
        self.computed += 1
        self._executor._points_computed += 1
        self._errors[point.index] = record
        if checkpoint_handle is not None:
            _append_checkpoint(checkpoint_handle, point, status="error", error=record)

    def _advance(self) -> PointResult:
        if self._failed is not None:
            # The underlying generator died with the task's exception; a
            # spent generator would otherwise just StopIterate, making
            # result() fail with an unrelated KeyError.
            raise SimulationError(
                f"campaign {self.name!r} already failed: {self._failed!r}"
            ) from self._failed
        if (
            self._pool_backed
            and self._executor._closed
            and len(self._seen) < len(self._points)
        ):
            # The pool was torn down with results still undelivered;
            # waiting on it would block forever.
            raise SimulationError(
                f"executor is closed with campaign {self.name!r} still "
                f"incomplete ({len(self._seen)}/{len(self._points)} points "
                f"resolved) — consume the handle before closing"
            )
        try:
            event = next(self._events)  # StopIteration ends the drain loops
        except StopIteration:
            raise
        except BaseException as exc:
            self._failed = exc
            if self._run is not None:
                self._run.abandon()
            raise
        self._seen.append(event)
        self._values[event.point.index] = event.value
        for callback in self._callbacks:
            callback(event.point, event.value)
        return event

    # -- observation -----------------------------------------------------
    def on_result(
        self, callback: Callable[[CampaignPoint, Any], None] | None
    ) -> "CampaignHandle":
        """Register ``callback(point, value)`` for every resolved point.

        This is the one implementation behind every driver's
        ``on_result=`` hook: events already observed are replayed
        immediately (cache/checkpoint hits resolve at submit time), then
        the callback fires as each further point resolves — whichever
        consumption style drives the stream.  Failed points (under a
        non-raising policy) fire with ``value=None``.  Returns the
        handle for chaining; ``None`` is accepted and ignored so drivers
        can pass their own optional hook straight through.
        """
        if callback is None:
            return self
        for event in self._seen:
            callback(event.point, event.value)
        self._callbacks.append(callback)
        return self

    @property
    def timeline(self) -> list[dict[str, Any]]:
        """Timeline records for the points resolved so far (point order)."""
        return [
            self._timeline[point.index]
            for point in self._points
            if point.index in self._timeline
        ]

    def _exec_quantiles(self) -> dict[str, float] | None:
        """p50/p95/p99 of ``exec_point_s`` over every outcome so far.

        Estimated from the live histogram's fixed buckets (all label
        sets combined), so the numbers match what a ``/metrics`` scraper
        would compute.  ``None`` when metrics are off or nothing has
        been observed yet.
        """
        if not _metrics.enabled:
            return None
        metric = _metrics.REGISTRY.get("exec_point_s")
        if not isinstance(metric, _metrics.Histogram):
            return None
        sample = metric.combined_sample()
        out = {}
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            estimate = _metrics.quantile_from_sample(sample, metric.buckets, q)
            if estimate is not None:
                out[name] = estimate
        return out or None

    def stats(self) -> dict[str, Any]:
        """Progress counters, per-point timeline, and a metrics snapshot.

        Never blocks — reports the state *so far*.  ``metrics`` is the
        process-global registry snapshot (worker deltas already merged
        in) when metrics collection is on, else ``None``;
        ``exec_point_quantiles`` estimates p50/p95/p99 of per-point
        execution time from the same snapshot.
        """
        return {
            "name": self.name,
            "points": len(self._points),
            "resolved": len(self._seen),
            "cache_hits": self.cache_hits,
            "checkpoint_hits": self.checkpoint_hits,
            "computed": self.computed,
            "errors": len(self._errors),
            "attempts": self.attempts,
            "timeline": self.timeline,
            "metrics": _metrics.snapshot() if _metrics.enabled else None,
            "exec_point_quantiles": self._exec_quantiles(),
        }

    # -- run ledger ------------------------------------------------------
    def run_record(self) -> dict[str, Any]:
        """The structured run record this campaign writes to the ledger.

        Self-contained and JSON-safe: identity (fingerprint, task,
        version, params shape), configuration (policy, workers, host),
        outcome counters, wall times, the full per-point timeline,
        terminal error records, the final metrics snapshot, and — when
        profiling was on — the merged hot-path table.
        """
        policy = self._policy
        return {
            "fingerprint": self._fingerprint,
            "name": self.name,
            "task": self._campaign.task_reference,
            "version": self._campaign.version,
            "points": len(self._points),
            "params_shape": sorted({k for p in self._points for k in p.params}),
            "policy": {
                "mode": policy.mode,
                "max_attempts": policy.max_attempts,
                "timeout": policy.timeout,
                "max_crashes": policy.max_crashes,
                "max_escalations": policy.max_escalations,
            },
            "target_error": self._target_error,
            "workers": self.workers,
            "env": {
                "cpu_count": os.cpu_count(),
                "platform": sys.platform,
                "python": platform.python_version(),
            },
            "started_at": self._started_at,
            "duration_s": time.perf_counter() - self._start,
            "cache_hits": self.cache_hits,
            "checkpoint_hits": self.checkpoint_hits,
            "computed": self.computed,
            "errors": self.errors,
            "timeline": self.timeline,
            "metrics": _metrics.snapshot() if _metrics.enabled else None,
            "exec_point_quantiles": self._exec_quantiles(),
            "profile": (
                _profiling.hot_table() if _profiling.raw_profiles() else None
            ),
        }

    def _write_ledger(self) -> None:
        """Append the run record once, when the event stream completes.

        A ledger failure (read-only filesystem, full disk) is telemetry
        trouble, never campaign trouble — the results are already
        delivered and cached by the time this runs.
        """
        if self._ledger is None or self._ledger_written:
            return
        self._ledger_written = True
        try:
            self._ledger.append(self.run_record())
        except OSError:
            pass

    # -- consumption styles ----------------------------------------------
    def as_completed(self) -> Iterator[PointResult]:
        """Iterate :class:`PointResult` events in completion order.

        Cache/checkpoint hits come first (in point order), computed
        points as they finish (scheduling order under a pool).  A task
        failure under ``fail_fast`` propagates from the iterator (the
        executor and its pool survive it); under ``continue``/``retry``
        failed points arrive as ``ok=False`` events carrying their error
        record.  Multiple iterators may be taken — each replays the
        events already observed, then continues the shared stream.
        """
        position = 0
        while True:
            while position < len(self._seen):
                yield self._seen[position]
                position += 1
            try:
                self._advance()
            except StopIteration:
                return

    def stream_results(self) -> Iterator[Any]:
        """Yield plain values in **point order**, each as soon as known.

        The first value is yielded as soon as point 0 resolves — long
        before the campaign barrier — which is what lets an adaptive
        caller issue its next campaign early.  Because the order is the
        deterministic point order, any early-stop decision made while
        streaming is independent of worker count and scheduling.  A
        point that terminally failed under a non-raising policy yields
        ``None`` (check :attr:`errors` / use :meth:`as_completed` for
        the records).
        """
        for point in self._points:
            while point.index not in self._values:
                try:
                    self._advance()
                except StopIteration:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"campaign {self.name!r} ended before point "
                        f"{point.index} resolved"
                    ) from None
            yield self._values[point.index]

    def result(self) -> CampaignResult:
        """Block until every point is done; the full ordered result."""
        for _ in self.as_completed():
            pass
        return self._build_result(self._points)

    def partial_result(self) -> CampaignResult:
        """A :class:`CampaignResult` over the points resolved *so far*.

        Never blocks.  Useful after an early-stopped stream: the values
        list aligns with the resolved subset of points (in point order).
        """
        resolved = [p for p in self._points if p.index in self._values]
        return self._build_result(resolved)

    def _build_result(self, points: list[CampaignPoint]) -> CampaignResult:
        return CampaignResult(
            name=self._campaign.name,
            values=[self._values[point.index] for point in points],
            points=points,
            cache_hits=self.cache_hits,
            checkpoint_hits=self.checkpoint_hits,
            computed=self.computed,
            workers=self.workers,
            duration_s=time.perf_counter() - self._start,
            errors=[
                self._errors[point.index]
                for point in points
                if point.index in self._errors
            ],
            timeline=[
                self._timeline[point.index]
                for point in points
                if point.index in self._timeline
            ],
        )


class CampaignExecutor:
    """A reusable, fault-tolerant campaign service with a warm worker pool.

    The pool is created lazily on the first submission that needs it and
    then *kept* — subsequent campaigns reuse the spawned workers, which
    is where short-sweep batteries win big (fork + numpy import cost is
    paid once, not per campaign).  Workers are *supervised*: a worker
    that dies mid-point is respawned and its point re-dispatched, and
    per-point timeouts/retries follow each submission's
    :class:`FailurePolicy`.  Close the executor (or use it as a context
    manager) to tear the pool down — gracefully when nothing is in
    flight.

    Args:
        workers: pool width; ``None``/``0``/``1`` executes in-process
            (streaming still works — points are computed lazily).
        cache: default :class:`ResultCache` (or directory path) applied
            to every submission unless overridden per call.
        chunk_size: retained for API compatibility; supervised dispatch
            is always per point (the scheduling quantum chunking used to
            amortise no longer exists), so this knob is accepted and
            ignored.
        policy: default :class:`FailurePolicy` (or mode string) for
            submissions that don't pass their own.
        http_port: serve live telemetry (``/metrics``, ``/status``,
            ``/spans``) on this localhost port for the executor's
            lifetime; ``0`` binds an ephemeral port (read it back from
            :attr:`http_port`).  ``None`` (default) consults the
            ``REPRO_OBS_HTTP`` environment variable.  Starting the
            server turns metrics and tracing collection on — an
            endpoint over a dark registry would be pointless.
        ledger: where completed runs append their
            :meth:`CampaignHandle.run_record`.  ``None`` (default)
            co-locates a :class:`~repro.obs.ledger.RunLedger` with each
            submission's result cache (``<cache root>/ledger.jsonl``;
            no cache, no ledger); ``False`` disables; a
            :class:`~repro.obs.ledger.RunLedger` or path pins an
            explicit location.
        profile: turn per-point :mod:`cProfile` capture on
            (:mod:`repro.obs.profiling` — note the flag is
            process-global, like ``obs.enable()``).  Worker profiles
            ship back over the result pipe and merge into the hot-path
            table of run records and flight reports.

    Attributes:
        stats: counters — ``pools_created``, ``campaigns``,
            ``points_computed``, plus the resilience counters
            ``respawns`` / ``retries`` / ``timeouts`` — for asserting
            pool reuse and recovery behaviour.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache: ResultCache | str | Path | None = None,
        chunk_size: int | None = None,
        policy: FailurePolicy | str | None = None,
        http_port: int | None = None,
        ledger: RunLedger | str | Path | bool | None = None,
        profile: bool = False,
    ) -> None:
        n_workers = int(workers or 1)
        if n_workers < 0:
            raise SimulationError("workers must be >= 0")
        self.workers = max(1, n_workers)
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.chunk_size = chunk_size
        self.policy = FailurePolicy.coerce(policy)
        self._pool: _SupervisedPool | None = None
        self._closed = False
        self._pools_created = 0
        self._campaigns = 0
        self._points_computed = 0
        self._counters: dict[str, int] = {
            "respawns": 0,
            "retries": 0,
            "timeouts": 0,
            "escalations": 0,
        }
        self._ledger_conf = ledger
        if profile:
            _profiling.enable()
        if http_port is None:
            raw = os.environ.get("REPRO_OBS_HTTP", "").strip()
            if raw:
                try:
                    http_port = int(raw)
                except ValueError:
                    raise SimulationError(
                        f"REPRO_OBS_HTTP must be a port number, got {raw!r}"
                    ) from None
        self._server: ObsServer | None = None
        if http_port is not None:
            _metrics.enable()
            _tracing.enable()
            self._server = ObsServer(port=http_port).start()

    # -- pool lifecycle --------------------------------------------------
    def _ensure_pool(self) -> _SupervisedPool:
        if self._closed:
            raise SimulationError("executor is closed")
        if self._pool is None:
            # The interpreter's default start method: fork where the
            # platform still defaults to it, forkserver/spawn elsewhere.
            # Workers only receive picklable (task_ref, point) payloads —
            # the task is re-imported inside the child — so every start
            # method works.
            ctx = multiprocessing.get_context()
            self._pool = _SupervisedPool(ctx, self.workers, self._counters)
            self._pools_created += 1
        return self._pool

    def warm(self) -> "CampaignExecutor":
        """Create the worker pool now (instead of on first submission).

        Useful when the time-to-first-result of the *next* campaign
        matters more than the cost of this call.  No-op for serial
        executors and already-warm pools.
        """
        if self.workers > 1:
            self._ensure_pool()
        return self

    @property
    def stats(self) -> dict[str, Any]:
        """Executor-lifetime counters (pool reuse, work done, recovery)."""
        return {
            "workers": self.workers,
            "pools_created": self._pools_created,
            "campaigns": self._campaigns,
            "points_computed": self._points_computed,
            "pool_alive": self._pool is not None,
            **self._counters,
        }

    @property
    def http_port(self) -> int | None:
        """The telemetry server's bound port (``None`` when not serving)."""
        return self._server.port if self._server is not None else None

    @property
    def http_url(self) -> str | None:
        """Base URL of the telemetry server (``None`` when not serving)."""
        return self._server.url if self._server is not None else None

    def _resolve_ledger(
        self, cache: ResultCache | None, conf: Any = _UNSET
    ) -> RunLedger | None:
        """The ledger a submission writes to, under the effective config."""
        if conf is _UNSET:
            conf = self._ledger_conf
        if conf is False:
            return None
        if conf is None or conf is True:
            return cache.ledger() if cache is not None else None
        if isinstance(conf, RunLedger):
            return conf
        return RunLedger(conf)

    def close(self, timeout: float = 5.0) -> bool:
        """Tear down the pool.  Safe to call twice; submits then fail.

        When no submission holds undelivered in-flight work, the workers
        drain gracefully: each receives the stop sentinel and is joined
        within ``timeout`` seconds.  Otherwise — an abandoned stream's
        points still running — the pool is terminated (those results go
        nowhere anyway).  Either way every worker process is gone when
        this returns.

        Returns:
            Whether the shutdown was graceful (trivially ``True`` when
            no pool was ever created).
        """
        self._closed = True
        server, self._server = self._server, None
        if server is not None:
            server.stop(timeout)
        pool, self._pool = self._pool, None
        if pool is not None:
            return pool.shutdown(timeout)
        return True

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- submission ------------------------------------------------------
    def submit(
        self,
        campaign: Campaign,
        *,
        cache: ResultCache | str | Path | None = _UNSET,
        checkpoint: str | Path | None = None,
        chunk_size: int | None = None,
        policy: FailurePolicy | str | None = None,
        faults: FaultPlan | None = None,
        ledger: RunLedger | str | Path | bool | None = _UNSET,
        target_error: float | None = None,
    ) -> CampaignHandle:
        """Start a campaign; consume it through the returned handle.

        Cache and checkpoint hits are resolved *now* — before any point
        is dispatched — so a fully-cached campaign never touches the
        pool.  Pending points are dispatched to the warm pool immediately
        (up to one per worker; the supervisor keeps workers fed as the
        handle is consumed); with ``workers <= 1`` they are computed
        lazily in-process as the handle is consumed.

        Args:
            campaign: the declarative spec.
            cache: override the executor default for this submission
                (``None`` disables caching).  Only successful values are
                ever cached.
            checkpoint: JSON-lines resume file, replayed then appended.
                Records are status-tagged: successes replay verbatim on
                resume, error records are retried.
            chunk_size: accepted for compatibility, ignored (supervised
                dispatch is per point).
            policy: :class:`FailurePolicy` (or mode string) for this
                submission; defaults to the executor's policy.
            faults: a :class:`repro.exec.faults.FaultPlan` injecting
                deterministic faults into this submission's executions
                (testing only).
            ledger: override the executor's run-ledger config for this
                submission (same semantics as the constructor argument:
                ``None`` co-locates with the effective cache, ``False``
                disables, a :class:`~repro.obs.ledger.RunLedger` or
                path pins a location).
            target_error: error-budget contract for this submission
                (defaults to the campaign's own ``target_error``).  When
                set, a point whose tracked truncation + purification
                error exceeds the budget is transparently re-run with
                escalated caps (``max_bond``/``max_kraus`` doubled from
                the observed dimensions), at most
                ``policy.max_escalations`` times per point.
        """
        if self._closed:
            raise SimulationError("executor is closed")
        del chunk_size  # per-point supervised dispatch: nothing to chunk
        start = time.perf_counter()
        if _metrics.enabled:
            _preregister_exec_metrics()
            _metrics.inc("exec_submits")
        if cache is _UNSET:
            cache = self.cache
        elif isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        effective = FailurePolicy.coerce(policy if policy is not None else self.policy)
        if target_error is None:
            target_error = campaign.target_error
        points = campaign.points()
        checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        replayed = _load_checkpoint(checkpoint_path) if checkpoint_path else {}

        hits: list[PointResult] = []
        pending: list[CampaignPoint] = []
        for point in points:
            if cache is not None:
                value = cache.get(point.key)
                if value is not MISS:
                    hits.append(PointResult(point, value, "cache"))
                    continue
            if point.key in replayed:
                value = replayed[point.key]
                hits.append(PointResult(point, value, "checkpoint"))
                if cache is not None:
                    cache.put(point.key, value)
                continue
            pending.append(point)

        run: _SupervisedRun | None = None
        if self.workers > 1 and len(pending) > 1:
            # Dispatch now: up to one point per worker starts immediately,
            # so workers make progress while the caller is off doing
            # something other than consuming the handle.
            pool = self._ensure_pool()
            run = pool.submit(
                campaign.task_reference, pending, effective, faults, target_error
            )
        fingerprint = stable_hash(
            {
                "task": campaign.task_reference,
                "version": campaign.version,
                "keys": [point.key for point in points],
            }
        )
        handle = CampaignHandle(
            executor=self,
            campaign=campaign,
            points=points,
            hits=hits,
            pending=pending,
            cache=cache,
            checkpoint_path=checkpoint_path,
            run=run,
            policy=effective,
            faults=faults,
            start=start,
            fingerprint=fingerprint,
            ledger=self._resolve_ledger(cache, ledger),
            target_error=target_error,
        )
        if self._server is not None:
            self._server.register(handle)
        self._campaigns += 1
        return handle

    def run(
        self,
        campaign: Campaign,
        *,
        cache: ResultCache | str | Path | None = _UNSET,
        checkpoint: str | Path | None = None,
        chunk_size: int | None = None,
        policy: FailurePolicy | str | None = None,
        faults: FaultPlan | None = None,
        ledger: RunLedger | str | Path | bool | None = _UNSET,
        target_error: float | None = None,
    ) -> CampaignResult:
        """Submit and drain one campaign (the barrier style)."""
        handle = self.submit(
            campaign,
            cache=cache,
            checkpoint=checkpoint,
            chunk_size=chunk_size,
            policy=policy,
            faults=faults,
            ledger=ledger,
            target_error=target_error,
        )
        return handle.result()


@contextmanager
def executor_scope(
    executor: CampaignExecutor | None,
    *,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    policy: FailurePolicy | str | None = None,
    ledger: RunLedger | str | Path | bool | None = None,
) -> Iterator[tuple[CampaignExecutor, dict[str, Any]]]:
    """The executor-or-own pattern shared by the workload drivers.

    Yields ``(executor, submit_kwargs)``.  With a caller-provided
    executor it is yielded as-is (and *not* closed afterwards), and
    ``submit_kwargs`` carries the caller's cache/policy as explicit
    overrides when given — a ``cache=None`` caller defers to the
    executor's own cache rather than disabling caching, and likewise for
    the failure policy.  Without one, a transient
    :class:`CampaignExecutor` is created with the caller's
    ``workers``/``cache``/``policy`` and closed on exit, and
    ``submit_kwargs`` is empty (the settings are already executor
    defaults).
    """
    if executor is not None:
        kwargs: dict[str, Any] = {}
        if cache is not None:
            kwargs["cache"] = cache
        if policy is not None:
            kwargs["policy"] = policy
        if ledger is not None:
            kwargs["ledger"] = ledger
        yield executor, kwargs
        return
    owned = CampaignExecutor(workers, cache=cache, policy=policy, ledger=ledger)
    try:
        yield owned, {}
    finally:
        owned.close()


def run_campaign(
    campaign: Campaign,
    *,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    checkpoint: str | Path | None = None,
    chunk_size: int | None = None,
    policy: FailurePolicy | str | None = None,
    faults: FaultPlan | None = None,
    target_error: float | None = None,
) -> CampaignResult:
    """Execute every point of a campaign, skipping already-known results.

    A thin one-shot wrapper over :class:`CampaignExecutor`: builds an
    executor, runs the campaign to the barrier, tears the pool down.
    Serial, parallel, and streamed executions are bit-identical (per-point
    spawned seeds), so parallelism is purely a wall-clock choice.  Batch
    callers running *many* campaigns should hold a
    :class:`CampaignExecutor` instead and amortise the pool.

    Args:
        campaign: the declarative spec.
        workers: worker-process count; ``None``/``0``/``1`` runs serially
            in-process.
        cache: a :class:`ResultCache` (or a directory path for one).
            Points found by content key are served without executing —
            across reruns *and* across different campaigns that share
            points.  Freshly computed successful values are written back;
            failures never are.
        checkpoint: JSON-lines file appended as points complete; an
            existing file is replayed first (resume after a kill), with
            corrupted lines skipped and error records retried.
        chunk_size: accepted for compatibility, ignored (supervised
            dispatch is per point).
        policy: :class:`FailurePolicy` (or mode string) governing task
            failures, worker crashes, and per-point timeouts.
        faults: a :class:`repro.exec.faults.FaultPlan` for deterministic
            fault injection (testing only).
        target_error: error-budget contract (see
            :meth:`CampaignExecutor.submit`); defaults to the campaign's
            own ``target_error``.

    Returns:
        A :class:`CampaignResult` with values in point order.
    """
    with CampaignExecutor(workers, cache=cache) as executor:
        return executor.run(
            campaign,
            checkpoint=checkpoint,
            chunk_size=chunk_size,
            policy=policy,
            faults=faults,
            target_error=target_error,
        )
