"""Persistent campaign execution: pooled workers and streaming results.

:func:`~repro.exec.runner.run_campaign` answers "run this sweep"; this
module answers "run *many* sweeps, fast, and let me consume points as
they finish".  A :class:`CampaignExecutor` keeps one warm
``multiprocessing`` pool alive across any number of
:meth:`~CampaignExecutor.submit` calls, so a battery of short campaigns
pays the fork + import cost once instead of per campaign.  Each
submission returns a :class:`CampaignHandle` exposing three consumption
styles:

* :meth:`~CampaignHandle.as_completed` — :class:`PointResult` events in
  completion order (cache and checkpoint hits first — they short-circuit
  before anything is dispatched to the pool);
* :meth:`~CampaignHandle.stream_results` — plain values in **point
  order**, each yielded as soon as it is available, so an adaptive
  caller (a bisection, an early-stopping battery) can act on point ``i``
  while points ``i+1..n`` are still running;
* :meth:`~CampaignHandle.result` — block until every point is done and
  return the familiar :class:`CampaignResult`.

All three observe the exact same values: per-point seeds are spawned
from campaign content (never a shared stream), so serial, parallel, and
streamed executions are bit-identical, and ``result()`` always reports
deterministic point order.

Abandoning a handle early (breaking out of a stream) is safe: points
already dispatched to the pool finish in the background and their
results are discarded; points never consumed are simply not cached or
checkpointed.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import NamedTuple

import numpy as np

from ..core.exceptions import SimulationError
from .cache import MISS, ResultCache
from .sweep import Campaign, CampaignPoint, resolve_task

__all__ = [
    "CampaignExecutor",
    "CampaignHandle",
    "CampaignResult",
    "PointResult",
    "executor_scope",
    "run_campaign",
    "to_jsonable",
]

#: Distinguishes "argument not given" from an explicit ``None``.
_UNSET = object()


def to_jsonable(value):
    """Normalise a task return value to plain JSON types.

    Numpy scalars become python numbers, numpy arrays and tuples become
    lists, dict keys are stringified where JSON requires it.  Raises for
    values JSON cannot represent (the task should return data, not
    objects).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(item)
        return out
    raise SimulationError(
        f"campaign task returned non-serialisable {type(value).__name__!r}; "
        f"return numbers, strings, lists, dicts, or numpy data"
    )


def _call_task(task_ref: str, point: CampaignPoint):
    """Execute one point's task with its seed injected."""
    task = resolve_task(task_ref)
    params = dict(point.params)
    if point.seed is not None and "seed" not in params:
        params["seed"] = point.seed
    return to_jsonable(task(**params))


def _pool_worker(payload):
    """Module-level pool target (must be picklable under spawn)."""
    task_ref, point = payload
    return point.index, point.key, _call_task(task_ref, point)


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign run produced.

    Attributes:
        name: the campaign's label.
        values: one task value per point, ordered by point index.
        points: the resolved points (same order).
        cache_hits: points served from the result cache.
        checkpoint_hits: points replayed from the checkpoint file.
        computed: points actually executed this run.
        workers: pool width used (1 = serial).
        duration_s: wall-clock time of the run.
    """

    name: str
    values: list
    points: list[CampaignPoint]
    cache_hits: int
    checkpoint_hits: int
    computed: int
    workers: int
    duration_s: float

    def __len__(self) -> int:
        return len(self.values)

    @property
    def hit_fraction(self) -> float:
        """Fraction of points that skipped execution (cache + checkpoint)."""
        if not self.values:
            return 0.0
        return (self.cache_hits + self.checkpoint_hits) / len(self.values)

    def as_table(self) -> list[dict]:
        """Per-point records ``{**params, "seed": ..., "value": ...}``."""
        return [
            {**point.params, "seed": point.seed, "value": value}
            for point, value in zip(self.points, self.values)
        ]


class PointResult(NamedTuple):
    """One completed campaign point, as seen by a streaming consumer.

    Attributes:
        point: the resolved :class:`CampaignPoint`.
        value: the task's (JSON-normalised) return value.
        source: ``"cache"``, ``"checkpoint"``, or ``"computed"``.
    """

    point: CampaignPoint
    value: object
    source: str


def _load_checkpoint(path: Path) -> dict[str, object]:
    """Replay a JSON-lines checkpoint, skipping corrupt/partial lines.

    A crash mid-append leaves at most one truncated trailing line; a
    corrupted file may contain arbitrary garbage.  Either way every
    well-formed line is recovered and the rest are recomputed — the
    checkpoint can only ever *save* work, never wedge a campaign.
    """
    done: dict[str, object] = {}
    try:
        text = path.read_text()
    except (FileNotFoundError, OSError):
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            done[record["key"]] = record["value"]
        except (ValueError, KeyError, TypeError):
            continue
    return done


def _append_checkpoint(handle, point: CampaignPoint, value) -> None:
    record = {"key": point.key, "index": point.index, "value": value}
    handle.write(json.dumps(record) + "\n")
    handle.flush()


class CampaignHandle:
    """A submitted campaign: consume its points as they finish.

    Created by :meth:`CampaignExecutor.submit` — never directly.  The
    handle owns the campaign's bookkeeping (which points were served from
    the cache or checkpoint, which were computed) and exposes the three
    consumption styles described in the module docstring.  All styles
    share one underlying event stream, so they can be mixed freely: a
    caller may pull a few events from :meth:`as_completed`, then call
    :meth:`result` to drain the rest.
    """

    def __init__(
        self,
        executor: "CampaignExecutor",
        campaign: Campaign,
        points: list[CampaignPoint],
        hits: list[PointResult],
        pending: list[CampaignPoint],
        cache: ResultCache | None,
        checkpoint_path: Path | None,
        result_iter,
        start: float,
    ) -> None:
        self._executor = executor
        self._campaign = campaign
        self._points = points
        self._cache = cache
        self._checkpoint_path = checkpoint_path
        # Clock starts when submit() began, so duration_s covers the
        # cache/checkpoint hit resolution too (a fully-cached campaign's
        # cost IS that scan).
        self._start = start
        self._seen: list[PointResult] = []
        self._values: dict[int, object] = {}
        self._pool_backed = result_iter is not None
        self._failed: BaseException | None = None
        self.cache_hits = sum(1 for hit in hits if hit.source == "cache")
        self.checkpoint_hits = len(hits) - self.cache_hits
        self.computed = 0
        # Effective pool width: a campaign whose pending work is 0 or 1
        # points runs in-process (reported as serial), exactly like the
        # one-shot runner always did.
        self.workers = executor.workers if result_iter is not None else 1
        self._events = self._event_stream(hits, pending, result_iter)

    @property
    def name(self) -> str:
        """The campaign's label."""
        return self._campaign.name

    @property
    def points(self) -> list[CampaignPoint]:
        """The campaign's resolved points, in deterministic order."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    # -- event production ------------------------------------------------
    def _event_stream(self, hits, pending, result_iter):
        """Yield :class:`PointResult` events in completion order.

        Hits are yielded first (they were resolved at submit time, before
        anything touched the pool); computed points follow as the pool —
        or the in-process serial loop — delivers them.
        """
        checkpoint_handle = None
        try:
            for hit in hits:
                yield hit
            if not pending:
                return
            if self._checkpoint_path is not None:
                self._checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
                checkpoint_handle = self._checkpoint_path.open("a")
            if result_iter is None:
                task_ref = self._campaign.task_reference
                for point in pending:
                    value = _call_task(task_ref, point)
                    self._record(point, value, checkpoint_handle)
                    yield PointResult(point, value, "computed")
            else:
                for index, _key, value in result_iter:
                    point = self._points[index]
                    self._record(point, value, checkpoint_handle)
                    yield PointResult(point, value, "computed")
        finally:
            if checkpoint_handle is not None:
                checkpoint_handle.close()

    def _record(self, point, value, checkpoint_handle) -> None:
        self.computed += 1
        self._executor._points_computed += 1
        if self._cache is not None:
            self._cache.put(point.key, value)
        if checkpoint_handle is not None:
            _append_checkpoint(checkpoint_handle, point, value)

    def _advance(self) -> PointResult:
        if self._failed is not None:
            # The underlying generator died with the task's exception; a
            # spent generator would otherwise just StopIterate, making
            # result() fail with an unrelated KeyError.
            raise SimulationError(
                f"campaign {self.name!r} already failed: {self._failed!r}"
            ) from self._failed
        if (
            self._pool_backed
            and self._executor._closed
            and len(self._seen) < len(self._points)
        ):
            # The pool was terminated with results still undelivered;
            # next() on its imap iterator would block forever.
            raise SimulationError(
                f"executor is closed with campaign {self.name!r} still "
                f"incomplete ({len(self._seen)}/{len(self._points)} points "
                f"resolved) — consume the handle before closing"
            )
        try:
            event = next(self._events)  # StopIteration ends the drain loops
        except StopIteration:
            raise
        except BaseException as exc:
            self._failed = exc
            raise
        self._seen.append(event)
        self._values[event.point.index] = event.value
        return event

    # -- consumption styles ----------------------------------------------
    def as_completed(self):
        """Iterate :class:`PointResult` events in completion order.

        Cache/checkpoint hits come first (in point order), computed
        points as they finish (scheduling order under a pool).  A task
        exception propagates from the iterator; the executor and its pool
        survive it.  Multiple iterators may be taken — each replays the
        events already observed, then continues the shared stream.
        """
        position = 0
        while True:
            while position < len(self._seen):
                yield self._seen[position]
                position += 1
            try:
                self._advance()
            except StopIteration:
                return

    def stream_results(self):
        """Yield plain values in **point order**, each as soon as known.

        The first value is yielded as soon as point 0 resolves — long
        before the campaign barrier — which is what lets an adaptive
        caller issue its next campaign early.  Because the order is the
        deterministic point order, any early-stop decision made while
        streaming is independent of worker count and scheduling.
        """
        for point in self._points:
            while point.index not in self._values:
                try:
                    self._advance()
                except StopIteration:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"campaign {self.name!r} ended before point "
                        f"{point.index} resolved"
                    ) from None
            yield self._values[point.index]

    def result(self) -> CampaignResult:
        """Block until every point is done; the full ordered result."""
        for _ in self.as_completed():
            pass
        return self._build_result(self._points)

    def partial_result(self) -> CampaignResult:
        """A :class:`CampaignResult` over the points resolved *so far*.

        Never blocks.  Useful after an early-stopped stream: the values
        list aligns with the resolved subset of points (in point order).
        """
        resolved = [p for p in self._points if p.index in self._values]
        return self._build_result(resolved)

    def _build_result(self, points: list[CampaignPoint]) -> CampaignResult:
        return CampaignResult(
            name=self._campaign.name,
            values=[self._values[point.index] for point in points],
            points=points,
            cache_hits=self.cache_hits,
            checkpoint_hits=self.checkpoint_hits,
            computed=self.computed,
            workers=self.workers,
            duration_s=time.perf_counter() - self._start,
        )


class CampaignExecutor:
    """A reusable campaign execution service with a warm worker pool.

    The pool is created lazily on the first submission that needs it and
    then *kept* — subsequent campaigns reuse the forked workers, which is
    where short-sweep batteries win big (fork + numpy import cost is paid
    once, not per campaign).  Close the executor (or use it as a context
    manager) to tear the pool down.

    Args:
        workers: pool width; ``None``/``0``/``1`` executes in-process
            (streaming still works — points are computed lazily).
        cache: default :class:`ResultCache` (or directory path) applied
            to every submission unless overridden per call.
        chunk_size: default points-per-dispatch for :meth:`submit`
            (default 1: streaming-friendly; :meth:`run` balances chunks
            for barrier throughput instead).

    Attributes:
        stats: counters — ``pools_created``, ``campaigns``,
            ``points_computed`` — for asserting pool reuse.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache: ResultCache | str | Path | None = None,
        chunk_size: int | None = None,
    ) -> None:
        n_workers = int(workers or 1)
        if n_workers < 0:
            raise SimulationError("workers must be >= 0")
        self.workers = max(1, n_workers)
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.chunk_size = chunk_size
        self._pool = None
        self._closed = False
        self._pools_created = 0
        self._campaigns = 0
        self._points_computed = 0

    # -- pool lifecycle --------------------------------------------------
    def _ensure_pool(self):
        if self._closed:
            raise SimulationError("executor is closed")
        if self._pool is None:
            # The interpreter's default start method: fork where the
            # platform still defaults to it, forkserver/spawn elsewhere.
            # Workers only receive picklable (task_ref, point) payloads —
            # the task is re-imported inside the child — so every start
            # method works.
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(processes=self.workers)
            self._pools_created += 1
        return self._pool

    def warm(self) -> "CampaignExecutor":
        """Create the worker pool now (instead of on first submission).

        Useful when the time-to-first-result of the *next* campaign
        matters more than the cost of this call.  No-op for serial
        executors and already-warm pools.
        """
        if self.workers > 1:
            self._ensure_pool()
        return self

    @property
    def stats(self) -> dict:
        """Executor-lifetime counters (pool reuse, work done)."""
        return {
            "workers": self.workers,
            "pools_created": self._pools_created,
            "campaigns": self._campaigns,
            "points_computed": self._points_computed,
            "pool_alive": self._pool is not None,
        }

    def close(self) -> None:
        """Tear down the pool.  Safe to call twice; submits then fail."""
        self._closed = True
        if self._pool is not None:
            # terminate (not close): abandoned streams may have orphaned
            # points still running, and their results go nowhere.
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ------------------------------------------------------
    def submit(
        self,
        campaign: Campaign,
        *,
        cache: ResultCache | str | Path | None = _UNSET,
        checkpoint: str | Path | None = None,
        chunk_size: int | None = None,
    ) -> CampaignHandle:
        """Start a campaign; consume it through the returned handle.

        Cache and checkpoint hits are resolved *now* — before any point
        is dispatched — so a fully-cached campaign never touches the
        pool.  Pending points are dispatched to the warm pool immediately
        (workers proceed while the caller is between ``next()`` calls);
        with ``workers <= 1`` they are computed lazily in-process as the
        handle is consumed.

        Args:
            campaign: the declarative spec.
            cache: override the executor default for this submission
                (``None`` disables caching).
            checkpoint: JSON-lines resume file, replayed then appended.
            chunk_size: points per pool dispatch (default: the
                executor's ``chunk_size``, else 1 for low latency).  The
                string ``"balanced"`` splits the pending points so each
                worker sees ~4 chunks — best for barrier consumption.
        """
        if self._closed:
            raise SimulationError("executor is closed")
        start = time.perf_counter()
        if cache is _UNSET:
            cache = self.cache
        elif isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        points = campaign.points()
        checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        replayed = _load_checkpoint(checkpoint_path) if checkpoint_path else {}

        hits: list[PointResult] = []
        pending: list[CampaignPoint] = []
        for point in points:
            if cache is not None:
                value = cache.get(point.key)
                if value is not MISS:
                    hits.append(PointResult(point, value, "cache"))
                    continue
            if point.key in replayed:
                value = replayed[point.key]
                hits.append(PointResult(point, value, "checkpoint"))
                if cache is not None:
                    cache.put(point.key, value)
                continue
            pending.append(point)

        if chunk_size is None:
            chunk_size = self.chunk_size if self.chunk_size is not None else 1
        if chunk_size == "balanced":
            chunk_size = max(1, len(pending) // (self.workers * 4))
        result_iter = None
        if self.workers > 1 and len(pending) > 1:
            # Dispatch now: imap feeds the pool from a background thread,
            # so workers make progress while the caller is off doing
            # something other than consuming the handle.
            pool = self._ensure_pool()
            task_ref = campaign.task_reference
            payloads = [(task_ref, point) for point in pending]
            result_iter = pool.imap_unordered(
                _pool_worker, payloads, chunksize=max(1, int(chunk_size))
            )
        handle = CampaignHandle(
            executor=self,
            campaign=campaign,
            points=points,
            hits=hits,
            pending=pending,
            cache=cache,
            checkpoint_path=checkpoint_path,
            result_iter=result_iter,
            start=start,
        )
        self._campaigns += 1
        return handle

    def run(
        self,
        campaign: Campaign,
        *,
        cache: ResultCache | str | Path | None = _UNSET,
        checkpoint: str | Path | None = None,
        chunk_size: int | None = None,
    ) -> CampaignResult:
        """Submit and drain one campaign (the barrier style).

        Equivalent to ``submit(...).result()`` except for the default
        chunking: with no explicit ``chunk_size`` the pending points are
        split so each worker sees ~4 chunks, amortising IPC without
        starving the tail — the right default when nobody is watching
        the stream.
        """
        if chunk_size is None and self.chunk_size is None:
            chunk_size = "balanced"
        handle = self.submit(
            campaign, cache=cache, checkpoint=checkpoint, chunk_size=chunk_size
        )
        return handle.result()


@contextmanager
def executor_scope(
    executor: CampaignExecutor | None,
    *,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
):
    """The executor-or-own pattern shared by the workload drivers.

    Yields ``(executor, submit_kwargs)``.  With a caller-provided
    executor it is yielded as-is (and *not* closed afterwards), and
    ``submit_kwargs`` carries the caller's cache as an explicit override
    when one was given — a ``cache=None`` caller defers to the
    executor's own cache rather than disabling caching.  Without one, a
    transient :class:`CampaignExecutor` is created with the caller's
    ``workers``/``cache`` and closed on exit, and ``submit_kwargs`` is
    empty (the cache is already the executor default).
    """
    if executor is not None:
        yield executor, ({} if cache is None else {"cache": cache})
        return
    owned = CampaignExecutor(workers, cache=cache)
    try:
        yield owned, {}
    finally:
        owned.close()


def run_campaign(
    campaign: Campaign,
    *,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    checkpoint: str | Path | None = None,
    chunk_size: int | None = None,
) -> CampaignResult:
    """Execute every point of a campaign, skipping already-known results.

    A thin one-shot wrapper over :class:`CampaignExecutor`: builds an
    executor, runs the campaign to the barrier, tears the pool down.
    Serial, parallel, and streamed executions are bit-identical (per-point
    spawned seeds), so parallelism is purely a wall-clock choice.  Batch
    callers running *many* campaigns should hold a
    :class:`CampaignExecutor` instead and amortise the pool.

    Args:
        campaign: the declarative spec.
        workers: worker-process count; ``None``/``0``/``1`` runs serially
            in-process.
        cache: a :class:`ResultCache` (or a directory path for one).
            Points found by content key are served without executing —
            across reruns *and* across different campaigns that share
            points.  Freshly computed values are written back.
        checkpoint: JSON-lines file appended as points complete; an
            existing file is replayed first (resume after a kill), with
            corrupted lines skipped.
        chunk_size: points handed to a worker per scheduling quantum
            (default: balanced so each worker sees ~4 chunks).

    Returns:
        A :class:`CampaignResult` with values in point order.
    """
    with CampaignExecutor(workers, cache=cache) as executor:
        return executor.run(campaign, checkpoint=checkpoint, chunk_size=chunk_size)
