"""Qudit noise channels as Kraus-operator families.

These channels model the error processes the paper calls out for cavity
qudits: photon loss (amplitude damping in the Fock basis), dephasing from
the dispersive transmon coupling, and generic depolarising noise over the
Weyl (generalised Pauli) group used for encoding-comparison studies.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .exceptions import DimensionError
from .gates import weyl, weyl_z

__all__ = [
    "QuditChannel",
    "depolarizing",
    "dephasing",
    "photon_loss",
    "thermal_heating",
    "weyl_channel",
    "unitary_channel",
    "identity_channel",
    "loss_probability_from_t1",
    "dephasing_probability_from_t2",
]


class QuditChannel:
    """A completely-positive trace-preserving map given by Kraus operators.

    Attributes:
        name: channel name for bookkeeping.
        kraus: tuple of Kraus matrices ``K_i`` with ``sum K_i† K_i = I``.
    """

    def __init__(
        self,
        kraus: Sequence[np.ndarray],
        name: str = "channel",
        atol: float = 1e-8,
    ) -> None:
        ops = tuple(np.asarray(k, dtype=complex) for k in kraus)
        if not ops:
            raise DimensionError("channel needs at least one Kraus operator")
        dim = ops[0].shape[0]
        for op in ops:
            if op.shape != (dim, dim):
                raise DimensionError("all Kraus operators must be square, same dim")
        total = sum(op.conj().T @ op for op in ops)
        if not np.allclose(total, np.eye(dim), atol=atol):
            raise DimensionError(
                f"channel {name!r} is not trace preserving "
                f"(max deviation {np.abs(total - np.eye(dim)).max():.2e})"
            )
        self.name = name
        self.kraus = ops

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the channel acts on."""
        return self.kraus[0].shape[0]

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix."""
        rho = np.asarray(rho, dtype=complex)
        out = np.zeros_like(rho)
        for op in self.kraus:
            out += op @ rho @ op.conj().T
        return out

    def compose(self, other: "QuditChannel") -> "QuditChannel":
        """Channel running ``self`` then ``other`` (``other ∘ self``)."""
        if other.dim != self.dim:
            raise DimensionError("cannot compose channels of different dims")
        ops = [b @ a for a in self.kraus for b in other.kraus]
        return QuditChannel(ops, name=f"{other.name}∘{self.name}")

    def average_fidelity(self) -> float:
        """Average gate fidelity of the channel relative to identity.

        Uses ``F_avg = (sum_i |Tr K_i|^2 / d + 1) / (d + 1)``, the standard
        entanglement-fidelity formula.
        """
        d = self.dim
        ent = sum(abs(np.trace(k)) ** 2 for k in self.kraus) / d**2
        return float((ent * d + 1.0) / (d + 1.0))

    def __repr__(self) -> str:
        return f"QuditChannel(name={self.name!r}, dim={self.dim}, n_kraus={len(self.kraus)})"


def identity_channel(d: int) -> QuditChannel:
    """The do-nothing channel."""
    return QuditChannel([np.eye(d, dtype=complex)], name="id")


def unitary_channel(unitary: np.ndarray, name: str = "unitary") -> QuditChannel:
    """Wrap a unitary as a single-Kraus channel."""
    return QuditChannel([np.asarray(unitary, dtype=complex)], name=name)


def depolarizing(d: int, p: float) -> QuditChannel:
    """Qudit depolarising channel.

    With probability ``p`` the state is hit by a uniformly random
    *non-identity* Weyl operator ``X^a Z^b``; with probability ``1-p``
    nothing happens.  This is the error model used in the encoding-threshold
    study (paper §II.A via ref [11]).
    """
    if not 0.0 <= p <= 1.0:
        raise DimensionError(f"probability p={p} outside [0, 1]")
    n_errors = d * d - 1
    ops = [math.sqrt(1.0 - p) * np.eye(d, dtype=complex)]
    for a in range(d):
        for b in range(d):
            if a == 0 and b == 0:
                continue
            ops.append(math.sqrt(p / n_errors) * weyl(d, a, b))
    return QuditChannel(ops, name=f"depol(d={d},p={p:.3g})")


def dephasing(d: int, p: float) -> QuditChannel:
    """Weyl dephasing: random ``Z^k`` (k != 0) with total probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise DimensionError(f"probability p={p} outside [0, 1]")
    ops = [math.sqrt(1.0 - p) * np.eye(d, dtype=complex)]
    for k in range(1, d):
        ops.append(math.sqrt(p / (d - 1)) * weyl_z(d, k))
    return QuditChannel(ops, name=f"dephase(d={d},p={p:.3g})")


def photon_loss(d: int, gamma: float) -> QuditChannel:
    """Bosonic amplitude damping over ``d`` Fock levels.

    Each photon independently survives with probability ``1 - gamma``; the
    Kraus operator for losing ``l`` photons is::

        K_l = sum_n sqrt(C(n, l)) sqrt((1-gamma)^(n-l) gamma^l) |n-l><n|

    This is the dominant cavity error process and the attractor NDAR
    exploits: repeated loss drives any state toward ``|0>``.
    """
    if not 0.0 <= gamma <= 1.0:
        raise DimensionError(f"loss probability gamma={gamma} outside [0, 1]")
    ops = []
    for lost in range(d):
        op = np.zeros((d, d), dtype=complex)
        for n in range(lost, d):
            amp = math.sqrt(math.comb(n, lost)) * math.sqrt(
                (1.0 - gamma) ** (n - lost) * gamma**lost
            )
            op[n - lost, n] = amp
        ops.append(op)
    return QuditChannel(ops, name=f"loss(d={d},g={gamma:.3g})")


def thermal_heating(d: int, epsilon: float) -> QuditChannel:
    """Weak thermal excitation: raise ``|n> -> |n+1>`` with probability ~``epsilon``.

    First-order model of the small upward transition rate present in real
    cavities (n_th > 0).  The top Fock level has nowhere to go and is left
    untouched.  Valid for ``epsilon << 1``.
    """
    if not 0.0 <= epsilon <= 0.5:
        raise DimensionError(f"heating probability {epsilon} outside [0, 0.5]")
    raise_op = np.zeros((d, d), dtype=complex)
    for n in range(d - 1):
        raise_op[n + 1, n] = math.sqrt(epsilon)
    keep = np.diag(np.sqrt(1.0 - epsilon * (np.arange(d) < d - 1)))
    return QuditChannel([keep.astype(complex), raise_op], name=f"heat(d={d},e={epsilon:.3g})")


def weyl_channel(d: int, probabilities: dict[tuple[int, int], float]) -> QuditChannel:
    """General Weyl (qudit Pauli) channel with per-``(a, b)`` probabilities.

    The identity component is inferred so probabilities sum to 1.
    """
    total = sum(probabilities.values())
    if total > 1.0 + 1e-12 or any(p < 0 for p in probabilities.values()):
        raise DimensionError("Weyl probabilities must be >= 0 and sum to <= 1")
    ops = [math.sqrt(max(0.0, 1.0 - total)) * np.eye(d, dtype=complex)]
    for (a, b), p in sorted(probabilities.items()):
        if p > 0:
            ops.append(math.sqrt(p) * weyl(d, a % d, b % d))
    return QuditChannel(ops, name=f"weyl(d={d})")


def loss_probability_from_t1(duration: float, t1: float) -> float:
    """Per-gate photon-loss probability ``1 - exp(-duration / T1)``."""
    if duration < 0 or t1 <= 0:
        raise DimensionError("duration must be >= 0 and T1 > 0")
    return 1.0 - math.exp(-duration / t1)


def dephasing_probability_from_t2(duration: float, t2: float) -> float:
    """Per-gate dephasing probability ``(1 - exp(-duration / T2)) / 2``."""
    if duration < 0 or t2 <= 0:
        raise DimensionError("duration must be >= 0 and T2 > 0")
    return (1.0 - math.exp(-duration / t2)) / 2.0
