"""Shot-based measurement and estimation utilities.

Everything the applications need to turn ideal expectation values into
*sampled* ones: multinomial basis sampling, binomial estimation of bounded
observables, and a shot-noise model for feature vectors (the reservoir
readout challenge the paper highlights in Table I row 3).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .dims import index_to_digits
from .exceptions import SimulationError
from .rng import ensure_rng, sanitize_probabilities

__all__ = [
    "counts_to_frequencies",
    "sample_probabilities",
    "estimate_expectation_from_counts",
    "sampled_expectation",
    "shot_noise_sigma",
]


def sample_probabilities(
    probabilities: np.ndarray,
    shots: int,
    dims: Sequence[int],
    rng: np.random.Generator | None = None,
) -> dict[tuple[int, ...], int]:
    """Multinomial sample of basis outcomes from a probability vector."""
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    rng = ensure_rng(rng)
    outcomes = rng.multinomial(shots, sanitize_probabilities(probabilities))
    counts: dict[tuple[int, ...], int] = {}
    for index in np.nonzero(outcomes)[0]:
        counts[index_to_digits(int(index), dims)] = int(outcomes[index])
    return counts


def counts_to_frequencies(
    counts: dict[tuple[int, ...], int]
) -> dict[tuple[int, ...], float]:
    """Normalise a counts dictionary to relative frequencies."""
    total = sum(counts.values())
    if total <= 0:
        raise SimulationError("empty counts dictionary")
    return {outcome: n / total for outcome, n in counts.items()}


def estimate_expectation_from_counts(
    counts: dict[tuple[int, ...], int],
    value_fn,
) -> float:
    """Empirical mean of ``value_fn(outcome)`` over sampled outcomes."""
    total = sum(counts.values())
    if total <= 0:
        raise SimulationError("empty counts dictionary")
    acc = 0.0
    for outcome, n in counts.items():
        acc += n * float(value_fn(outcome))
    return acc / total


def sampled_expectation(
    exact_value: float,
    shots: int,
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Gaussian shot-noise model of a sampled expectation value.

    For an observable with outcome spread ``scale`` estimated from ``shots``
    samples, the estimator is ``exact + N(0, scale / sqrt(shots))``.  This
    captures the ``1/sqrt(shots)`` overhead driving the paper's reservoir
    readout challenge without simulating every projective shot.
    """
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    rng = ensure_rng(rng)
    return float(exact_value + rng.normal(0.0, scale / np.sqrt(shots)))


def shot_noise_sigma(scale: float, shots: int) -> float:
    """Standard error ``scale / sqrt(shots)`` of a sampled estimator."""
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    return float(scale / np.sqrt(shots))
