"""Mixed-radix index arithmetic for registers of mixed-dimension qudits.

A register of ``n`` qudits with dimensions ``dims = (d_0, ..., d_{n-1})``
spans a Hilbert space of dimension ``prod(dims)``.  Basis states are labelled
by digit tuples ``(k_0, ..., k_{n-1})`` with ``0 <= k_i < d_i``; the flat
index uses *big-endian* convention (qudit 0 is the most significant digit),
matching the tensor-product order ``|k_0> ⊗ |k_1> ⊗ ...``.

These helpers are the foundation of every simulator in :mod:`repro.core`:
they must be fast, allocation-light, and obviously correct.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .exceptions import DimensionError

__all__ = [
    "validate_dims",
    "total_dim",
    "index_to_digits",
    "digits_to_index",
    "all_digit_tuples",
    "basis_labels",
    "strides",
    "digit_matrix",
]


def validate_dims(dims: Sequence[int]) -> tuple[int, ...]:
    """Validate and normalise a dimension sequence.

    Args:
        dims: per-qudit dimensions; each must be an integer >= 2.

    Returns:
        The dimensions as a tuple of python ints.

    Raises:
        DimensionError: if ``dims`` is empty or contains an entry < 2.
    """
    out = tuple(int(d) for d in dims)
    if not out:
        raise DimensionError("register must contain at least one qudit")
    for i, d in enumerate(out):
        if d < 2:
            raise DimensionError(f"qudit {i} has dimension {d}; must be >= 2")
    return out


def total_dim(dims: Sequence[int]) -> int:
    """Hilbert-space dimension of a register, ``prod(dims)``."""
    out = 1
    for d in validate_dims(dims):
        out *= d
    return out


def strides(dims: Sequence[int]) -> tuple[int, ...]:
    """Big-endian place values: ``index = sum_i digit_i * stride_i``."""
    dims = validate_dims(dims)
    out = [1] * len(dims)
    for i in range(len(dims) - 2, -1, -1):
        out[i] = out[i + 1] * dims[i + 1]
    return tuple(out)


def index_to_digits(index: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Convert a flat basis index to its per-qudit digit tuple.

    Args:
        index: flat index in ``[0, prod(dims))``.
        dims: per-qudit dimensions.

    Returns:
        Digit tuple ``(k_0, ..., k_{n-1})`` in big-endian order.
    """
    dims = validate_dims(dims)
    dim = total_dim(dims)
    if not 0 <= index < dim:
        raise DimensionError(f"index {index} out of range for dimension {dim}")
    digits = []
    for d in reversed(dims):
        digits.append(index % d)
        index //= d
    return tuple(reversed(digits))


def digits_to_index(digits: Sequence[int], dims: Sequence[int]) -> int:
    """Convert a per-qudit digit tuple to its flat basis index."""
    dims = validate_dims(dims)
    if len(digits) != len(dims):
        raise DimensionError(
            f"got {len(digits)} digits for a register of {len(dims)} qudits"
        )
    index = 0
    for k, d in zip(digits, dims):
        if not 0 <= k < d:
            raise DimensionError(f"digit {k} out of range for dimension {d}")
        index = index * d + k
    return index


def all_digit_tuples(dims: Sequence[int]) -> Iterable[tuple[int, ...]]:
    """Iterate over all basis digit tuples in flat-index order."""
    dims = validate_dims(dims)
    for index in range(total_dim(dims)):
        yield index_to_digits(index, dims)


def basis_labels(dims: Sequence[int]) -> list[str]:
    """Human-readable ket labels, e.g. ``['|00>', '|01>', ...]``.

    Digits of qudits with dimension > 10 are comma-separated to stay
    unambiguous (``|10,3>``).
    """
    dims = validate_dims(dims)
    sep = "," if any(d > 10 for d in dims) else ""
    return [
        "|" + sep.join(str(k) for k in digits) + ">"
        for digits in all_digit_tuples(dims)
    ]


def digit_matrix(dims: Sequence[int]) -> np.ndarray:
    """All basis digit tuples as an ``(prod(dims), n)`` integer array.

    Row ``i`` is ``index_to_digits(i, dims)``.  Vectorised equivalent of
    :func:`all_digit_tuples`, used by cost evaluators that need to score
    every basis state at once.
    """
    dims = validate_dims(dims)
    dim = total_dim(dims)
    out = np.empty((dim, len(dims)), dtype=np.int64)
    idx = np.arange(dim)
    for pos in range(len(dims) - 1, -1, -1):
        out[:, pos] = idx % dims[pos]
        idx //= dims[pos]
    return out
