"""Text-mode visualisation: circuit diagrams and Wigner functions.

Terminal-friendly inspection tools — no plotting dependency, matching the
offline/laptop posture of the rest of the toolkit.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuditCircuit
from .exceptions import DimensionError
from .gates import displacement, parity_op

__all__ = ["draw_circuit", "wigner_function", "wigner_text"]


def draw_circuit(circuit: QuditCircuit, max_columns: int = 24) -> str:
    """ASCII diagram of a circuit, one row per wire.

    Single-wire instructions render as ``[name]``; multi-wire unitaries as
    ``[name]`` on the first wire and ``[*]`` on the others; channels as
    ``{name}``.  Long circuits are truncated with an ellipsis column.

    Args:
        circuit: circuit to draw.
        max_columns: instruction-column cap before truncation.

    Returns:
        Multi-line string.
    """
    n = circuit.num_qudits
    columns: list[list[str]] = []
    for instruction in circuit:
        cells = ["-"] * n
        label = instruction.name[:8]
        if instruction.kind == "channel":
            decorated = "{" + label + "}"
        elif instruction.kind in ("measure", "reset"):
            decorated = "<" + label + ">"
        else:
            decorated = "[" + label + "]"
        first, *rest = instruction.qudits
        cells[first] = decorated
        for wire in rest:
            cells[wire] = "[*]" if instruction.kind == "unitary" else "{*}"
        columns.append(cells)
        if len(columns) >= max_columns:
            columns.append(["..."] * n)
            break
    lines = []
    for wire in range(n):
        label = f"q{wire}(d={circuit.dims[wire]}): "
        row = [label]
        for cells in columns:
            cell = cells[wire]
            row.append(cell if cell != "-" else "---")
            row.append("-")
        lines.append("".join(row).rstrip("-") + "-")
    return "\n".join(lines)


def wigner_function(
    rho: np.ndarray,
    xs: np.ndarray,
    ps: np.ndarray,
) -> np.ndarray:
    """Wigner function on a phase-space grid via displaced parity.

    ``W(x, p) = (1/pi) Tr( D(-alpha) rho D(-alpha)† P )`` with
    ``alpha = (x + i p) / sqrt(2)``, normalised so ``∫ W dx dp = 1``;
    evaluated on the truncated space (accurate while the state lives well
    below the cutoff).

    Args:
        rho: ``d x d`` density matrix.
        xs: grid of x-quadrature values.
        ps: grid of p-quadrature values.

    Returns:
        Array of shape ``(len(ps), len(xs))`` (rows = p, for display).
    """
    rho = np.asarray(rho, dtype=complex)
    d = rho.shape[0]
    if rho.shape != (d, d):
        raise DimensionError("rho must be square")
    parity = parity_op(d)
    out = np.empty((len(ps), len(xs)))
    for i, p in enumerate(ps):
        for j, x in enumerate(xs):
            alpha = (x + 1j * p) / np.sqrt(2.0)
            disp = displacement(d, -alpha)
            out[i, j] = (1.0 / np.pi) * float(
                np.real(np.trace(disp @ rho @ disp.conj().T @ parity))
            )
    return out


def wigner_text(
    rho: np.ndarray,
    extent: float = 3.0,
    resolution: int = 21,
) -> str:
    """Coarse ASCII heat map of the Wigner function.

    Negative regions (the non-classicality witness) render as ``-``/``=``,
    positive ones as ``.:+#`` by magnitude.

    Args:
        rho: density matrix.
        extent: half-width of the square phase-space window.
        resolution: grid points per axis (odd keeps the origin on-grid).

    Returns:
        Multi-line string, p increasing upward.
    """
    grid = np.linspace(-extent, extent, resolution)
    wigner = wigner_function(rho, grid, grid)
    peak = np.abs(wigner).max()
    if peak <= 0:
        peak = 1.0
    lines = []
    for row in wigner[::-1]:  # p increases upward
        chars = []
        for value in row:
            level = value / peak
            if level < -0.5:
                chars.append("=")
            elif level < -0.05:
                chars.append("-")
            elif level < 0.05:
                chars.append(" ")
            elif level < 0.3:
                chars.append(".")
            elif level < 0.6:
                chars.append(":")
            elif level < 0.85:
                chars.append("+")
            else:
                chars.append("#")
        lines.append("".join(chars))
    return "\n".join(lines)
