"""Unified simulation-backend registry and dispatch layer.

Workload packages (:mod:`repro.sqed`, :mod:`repro.qaoa`,
:mod:`repro.reservoir`) historically hard-coded their simulator — density
matrices here, batched trajectories there — so adding a new engine meant
touching every study.  This module gives every simulator one face:

    >>> backend = get_backend("mps", max_bond=32)
    >>> result = backend.run(circuit, n_trajectories=16, rng=7)
    >>> result.expectation(op, targets=(0, 3))
    >>> result.sample(100, rng=8)

Backends implement ``run(circuit, initial=None, **options) -> BackendResult``
and ``prepare(dims, digits=None, **options)`` (an unevolved state usable as
``initial``, which is how stepwise drivers — Trotter observable recording,
reservoir clock loops — carry one state through many circuit segments).
Results expose ``expectation`` / ``sample`` / ``probabilities_of`` (plus a
dense ``probabilities`` for small registers), so a workload written against
the protocol runs unchanged on any registered engine.

Built-in names: ``"statevector"`` (exact, noiseless, O(D)), ``"density"``
(exact noisy, O(D^2)), ``"trajectories"`` (stochastic noisy, O(D·B)),
``"mps"`` (entanglement-bounded, O(n·chi^2·d) — reaches 15+ qutrit
registers, but channels are unravelled stochastically), ``"lpdo"``
(locally-purified density operator: *exact* noisy evolution at
entanglement-bounded cost, the only engine that is both scalable and free
of trajectory sampling noise).  Register additional engines with
:func:`register_backend`.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import Any

import numpy as np

from .circuit import QuditCircuit
from .density import DensityMatrix
from .dims import digits_to_index, index_to_digits, validate_dims
from .exceptions import SimulationError
from .lpdo import LPDOState
from .mps import MPSState
from .rng import RngLike, ensure_rng, sanitize_probabilities
from .statevector import Statevector, apply_matrix
from .trajectories import TrajectorySimulator

__all__ = [
    "BackendResult",
    "SimulationBackend",
    "StatevectorBackend",
    "DensityMatrixBackend",
    "TrajectoryBackend",
    "MPSBackend",
    "LPDOBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


class BackendResult(abc.ABC):
    """State produced by a backend run — the common observable surface."""

    #: Register dimensions of the underlying state.
    dims: tuple[int, ...]

    @abc.abstractmethod
    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> float:
        """Real part of ``<O>`` for a local (or ``targets=None`` global) operator."""

    @abc.abstractmethod
    def sample(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> dict[tuple[int, ...], int]:
        """Draw computational-basis outcomes as a digits -> count mapping."""

    @abc.abstractmethod
    def probabilities_of(self, digits: Sequence[int]) -> float:
        """Probability of one specific basis outcome."""

    @abc.abstractmethod
    def probabilities(self) -> np.ndarray:
        """Dense probability vector (raises on registers too large to hold one)."""


class SimulationBackend(abc.ABC):
    """A named simulation engine with option defaults.

    Args:
        **defaults: option defaults merged (and overridable) per
            :meth:`run` / :meth:`prepare` call — e.g.
            ``get_backend("mps", max_bond=64)``.
    """

    name: str = ""

    def __init__(self, **defaults: Any) -> None:
        self._defaults = dict(defaults)

    def run(
        self, circuit: QuditCircuit, initial: Any = None, **options: Any
    ) -> BackendResult:
        """Evolve ``initial`` (or the all-|0> state) through a circuit.

        Args:
            circuit: circuit to execute.
            initial: ``None``, a domain state (``Statevector``,
                ``DensityMatrix``, ``MPSState``) or a :class:`BackendResult`
                previously produced by this backend (stepwise evolution).
                Stochastic backends continue a result's random stream —
                seed the stream once via :meth:`prepare` (or the first
                ``run``); a per-call ``rng`` is ignored on continuation so
                stepwise loops never replay identical draws per step.
            **options: backend-specific knobs overriding the defaults.
        """
        merged = dict(self._defaults)
        merged.update(options)
        return self._run(circuit, initial, **merged)

    def prepare(
        self,
        dims: Sequence[int],
        digits: Sequence[int] | None = None,
        **options: Any,
    ) -> BackendResult:
        """An unevolved basis-state result, usable as ``initial`` for :meth:`run`."""
        merged = dict(self._defaults)
        merged.update(options)
        dims = validate_dims(dims)
        if digits is None:
            digits = [0] * len(dims)
        return self._prepare(dims, tuple(int(k) for k in digits), **merged)

    @abc.abstractmethod
    def _run(
        self, circuit: QuditCircuit, initial: Any, **options: Any
    ) -> BackendResult: ...

    @abc.abstractmethod
    def _prepare(
        self, dims: tuple[int, ...], digits: tuple[int, ...], **options: Any
    ) -> BackendResult: ...


# ----------------------------------------------------------------------
# statevector
# ----------------------------------------------------------------------
class StatevectorResult(BackendResult):
    """Wraps a final :class:`Statevector`."""

    def __init__(self, state: Statevector) -> None:
        self.state = state
        self.dims = state.dims

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> float:
        return float(np.real(self.state.expectation(operator, targets)))

    def sample(
        self, shots: int, rng: RngLike = None
    ) -> dict[tuple[int, ...], int]:
        return self.state.sample(shots, rng=rng)

    def probabilities_of(self, digits: Sequence[int]) -> float:
        return float(self.probabilities()[digits_to_index(digits, self.dims)])

    def probabilities(self) -> np.ndarray:
        probs = self.state.probabilities()
        return probs / probs.sum()


class StatevectorBackend(SimulationBackend):
    """Exact dense pure-state evolution (noiseless circuits only)."""

    name = "statevector"

    def _run(
        self, circuit: QuditCircuit, initial: Any, **options: Any
    ) -> StatevectorResult:
        if isinstance(initial, StatevectorResult):
            initial = initial.state
        state = Statevector.zero(circuit.dims) if initial is None else initial
        return StatevectorResult(state.evolve(circuit))

    def _prepare(
        self, dims: tuple[int, ...], digits: tuple[int, ...], **options: Any
    ) -> StatevectorResult:
        return StatevectorResult(Statevector.basis(dims, digits))


# ----------------------------------------------------------------------
# density matrix
# ----------------------------------------------------------------------
class DensityResult(BackendResult):
    """Wraps a final :class:`DensityMatrix`."""

    def __init__(self, state: DensityMatrix) -> None:
        self.state = state
        self.dims = state.dims
        self._clipped_trace: float | None = None

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> float:
        return float(np.real(self.state.expectation(operator, targets)))

    def sample(
        self, shots: int, rng: RngLike = None
    ) -> dict[tuple[int, ...], int]:
        return self.state.sample(shots, rng=ensure_rng(rng))

    def probabilities_of(self, digits: Sequence[int]) -> float:
        # Normalised identically to probabilities(): clip the entry and
        # divide by the *clipped* diagonal sum, so rounding drift (or a
        # slightly unphysical rho) cannot make the two surfaces disagree.
        # The normaliser is call-invariant and cached once per result.
        raw = self.state.probability_of(digits)
        if self._clipped_trace is None:
            self._clipped_trace = float(self.state.probabilities().sum())
        return float(max(raw, 0.0)) / self._clipped_trace

    def probabilities(self) -> np.ndarray:
        probs = self.state.probabilities()
        return probs / probs.sum()


class DensityMatrixBackend(SimulationBackend):
    """Exact noisy evolution; memory is O(D^2), so small registers only."""

    name = "density"

    def _run(
        self, circuit: QuditCircuit, initial: Any, **options: Any
    ) -> DensityResult:
        if isinstance(initial, DensityResult):
            initial = initial.state
        elif isinstance(initial, Statevector):
            initial = DensityMatrix.from_statevector(initial)
        state = DensityMatrix.zero(circuit.dims) if initial is None else initial
        return DensityResult(state.evolve(circuit))

    def _prepare(
        self, dims: tuple[int, ...], digits: tuple[int, ...], **options: Any
    ) -> DensityResult:
        return DensityResult(DensityMatrix.basis(dims, digits))


# ----------------------------------------------------------------------
# batched trajectories
# ----------------------------------------------------------------------
class TrajectoryResult(BackendResult):
    """Holds the final batch of stochastic pure-state trajectories."""

    def __init__(
        self, batch: np.ndarray, dims: Sequence[int], rng: np.random.Generator
    ) -> None:
        self.batch = batch  # (dim, n_trajectories)
        self.dims = tuple(dims)
        self._rng = rng
        self._mean_norm_sq: float | None = None

    @property
    def n_trajectories(self) -> int:
        return self.batch.shape[1]

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> float:
        operator = np.asarray(operator, dtype=complex)
        if targets is None:
            targets = tuple(range(len(self.dims)))
        elif isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        tensor = self.batch.reshape(self.dims + (self.n_trajectories,))
        transformed = apply_matrix(tensor, operator, self.dims, targets)
        flat = transformed.reshape(self.batch.shape)
        values = np.real(np.einsum("ib,ib->b", self.batch.conj(), flat))
        return float(values.mean())

    def sample(
        self, shots: int, rng: RngLike = None
    ) -> dict[tuple[int, ...], int]:
        gen = ensure_rng(rng if rng is not None else self._rng)
        probs = sanitize_probabilities(self.probabilities())
        outcomes = gen.multinomial(shots, probs)
        counts: dict[tuple[int, ...], int] = {}
        for index in np.nonzero(outcomes)[0]:
            counts[index_to_digits(int(index), self.dims)] = int(outcomes[index])
        return counts

    def probabilities_of(self, digits: Sequence[int]) -> float:
        # Normalised identically to probabilities(): trajectory norms drift
        # under non-trace-preserving rounding, so the raw averaged weight
        # and the renormalised dense vector would otherwise disagree.  The
        # normalisation is call-invariant, so it is computed once per
        # result; each query then reads a single row of the batch.
        index = digits_to_index(digits, self.dims)
        if self._mean_norm_sq is None:
            self._mean_norm_sq = float(
                (np.abs(self.batch) ** 2).sum(axis=0).mean()
            )
        row = float((np.abs(self.batch[index]) ** 2).mean())
        return row / self._mean_norm_sq

    def probabilities(self) -> np.ndarray:
        probs = (np.abs(self.batch) ** 2).mean(axis=1)
        return probs / probs.sum()


class TrajectoryBackend(SimulationBackend):
    """Stochastic Kraus unravelling over a batched trajectory tensor.

    Options: ``n_trajectories`` (default 128), ``rng`` (generator / seed),
    ``max_batch`` (memory chunking cap forwarded to the simulator).
    """

    name = "trajectories"

    def _run(
        self,
        circuit: QuditCircuit,
        initial: Any,
        n_trajectories: int = 128,
        rng: RngLike = None,
        max_batch: int | None = None,
        **options: Any,
    ) -> TrajectoryResult:
        if isinstance(initial, TrajectoryResult):
            # Stepwise continuation stays on the result's generator: honouring
            # a per-call integer seed here would re-seed (and identically
            # replay) the jump draws at every step of a stepwise loop.
            gen = initial._rng
            batch = initial.batch
        else:
            gen = ensure_rng(rng)
            if initial is None:
                initial = Statevector.zero(circuit.dims)
            if n_trajectories < 1:
                raise SimulationError("need at least one trajectory")
            batch = np.ascontiguousarray(
                np.broadcast_to(
                    initial.vector[:, None], (initial.dim, n_trajectories)
                )
            )
        simulator = TrajectorySimulator(circuit, seed=gen, max_batch=max_batch)
        tensor = batch.reshape(circuit.dims + (batch.shape[1],))
        final = simulator.evolve_states(tensor).reshape(batch.shape)
        return TrajectoryResult(final, circuit.dims, gen)

    def _prepare(
        self,
        dims: tuple[int, ...],
        digits: tuple[int, ...],
        n_trajectories: int = 128,
        rng: RngLike = None,
        **options: Any,
    ) -> TrajectoryResult:
        gen = ensure_rng(rng)
        state = Statevector.basis(dims, digits)
        batch = np.ascontiguousarray(
            np.broadcast_to(state.vector[:, None], (state.dim, n_trajectories))
        )
        return TrajectoryResult(batch, dims, gen)


# ----------------------------------------------------------------------
# matrix product state
# ----------------------------------------------------------------------
class MPSResult(BackendResult):
    """Holds one or more final MPS trajectories."""

    def __init__(self, states: list[MPSState], rng: np.random.Generator) -> None:
        if not states:
            raise SimulationError("MPS result needs at least one state")
        self.states = states
        self.dims = states[0].dims
        self._rng = rng

    @property
    def truncation_error(self) -> float:
        """Largest cumulative truncation error over the trajectories."""
        return max(state.truncation_error for state in self.states)

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> float:
        values = [
            float(np.real(state.expectation(operator, targets)))
            for state in self.states
        ]
        return float(np.mean(values))

    def sample(
        self, shots: int, rng: RngLike = None
    ) -> dict[tuple[int, ...], int]:
        gen = ensure_rng(rng if rng is not None else self._rng)
        allocation = gen.multinomial(
            shots, np.full(len(self.states), 1.0 / len(self.states))
        )
        counts: dict[tuple[int, ...], int] = {}
        for state, share in zip(self.states, allocation):
            if share == 0:
                continue
            for digits, count in state.sample(int(share), rng=gen).items():
                counts[digits] = counts.get(digits, 0) + count
        return counts

    def probabilities_of(self, digits: Sequence[int]) -> float:
        return float(
            np.mean([state.probability_of(digits) for state in self.states])
        )

    def probabilities(self) -> np.ndarray:
        total = self.states[0].probabilities()
        for state in self.states[1:]:
            total = total + state.probabilities()
        return total / len(self.states)


class MPSBackend(SimulationBackend):
    """Matrix-product-state evolution with bounded bond dimension.

    Options: ``max_bond`` (chi cap; ``None`` = exact), ``svd_tol``,
    ``n_trajectories`` (stochastic unravelling width for noisy circuits,
    default 1), ``rng`` (generator / seed).
    """

    name = "mps"

    def _run(
        self,
        circuit: QuditCircuit,
        initial: Any,
        max_bond: int | None = None,
        svd_tol: float = 1e-12,
        n_trajectories: int = 1,
        rng: RngLike = None,
        **options: Any,
    ) -> MPSResult:
        if n_trajectories < 1:
            raise SimulationError("need at least one trajectory")
        stochastic = any(ins.kind in ("channel", "reset") for ins in circuit)
        if isinstance(initial, MPSResult):
            # Stepwise continuation stays on the result's generator (a
            # per-call integer seed would identically replay each step).
            gen = initial._rng
            states = initial.states
            if stochastic and n_trajectories > len(states):
                # Widen the ensemble by replication; copies diverge through
                # subsequent stochastic draws from the shared generator.
                states = [
                    states[i % len(states)] for i in range(n_trajectories)
                ]
        else:
            gen = ensure_rng(rng)
            if initial is None:
                base = MPSState.zero(
                    circuit.dims, max_bond=max_bond, svd_tol=svd_tol
                )
            elif isinstance(initial, MPSState):
                base = initial
            else:  # densify-from-Statevector escape hatch (small registers)
                base = MPSState.from_statevector(
                    initial, max_bond=max_bond, svd_tol=svd_tol
                )
            states = [base] * (n_trajectories if stochastic else 1)
        return MPSResult(
            [state.evolve(circuit, rng=gen) for state in states], gen
        )

    def _prepare(
        self,
        dims: tuple[int, ...],
        digits: tuple[int, ...],
        max_bond: int | None = None,
        svd_tol: float = 1e-12,
        n_trajectories: int = 1,
        rng: RngLike = None,
        **options: Any,
    ) -> MPSResult:
        gen = ensure_rng(rng)
        base = MPSState.basis(dims, digits, max_bond=max_bond, svd_tol=svd_tol)
        return MPSResult([base] * max(1, int(n_trajectories)), gen)


# ----------------------------------------------------------------------
# locally-purified density operator
# ----------------------------------------------------------------------
class LPDOResult(BackendResult):
    """Wraps a final :class:`LPDOState` (exact mixed state, no trajectories)."""

    def __init__(self, state: LPDOState) -> None:
        self.state = state
        self.dims = state.dims

    @property
    def truncation_error(self) -> float:
        """Cumulative trace weight discarded by bond truncations."""
        return self.state.truncation_error

    @property
    def purification_error(self) -> float:
        """Cumulative trace weight discarded by Kraus-leg truncations."""
        return self.state.purification_error

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> float:
        return float(np.real(self.state.expectation(operator, targets)))

    def sample(
        self, shots: int, rng: RngLike = None
    ) -> dict[tuple[int, ...], int]:
        return self.state.sample(shots, rng=rng)

    def probabilities_of(self, digits: Sequence[int]) -> float:
        return float(self.state.probabilities_of(digits))

    def probabilities(self) -> np.ndarray:
        return self.state.probabilities()


class LPDOBackend(SimulationBackend):
    """Exact noisy evolution in locally-purified density-MPO form.

    Channels grow the per-site Kraus leg instead of being sampled, so one
    run *is* the full mixed-state answer — no trajectory averaging, no
    Monte-Carlo error — at memory bounded by ``max_bond`` / ``max_kraus``
    rather than ``D^2``.

    Options: ``max_bond`` (chi cap; ``None`` = exact), ``max_kraus``
    (Kraus-leg cap; ``None`` = exact-rank lossless recompression only),
    ``svd_tol``.
    """

    name = "lpdo"

    #: Distinguishes "option not supplied" from an explicit ``None`` so a
    #: cap carried in by the initial state is only overridden on request.
    _UNSET: Any = object()

    def _run(
        self,
        circuit: QuditCircuit,
        initial: Any,
        max_bond: Any = _UNSET,
        max_kraus: Any = _UNSET,
        svd_tol: Any = _UNSET,
        **options: Any,
    ) -> LPDOResult:
        unset = LPDOBackend._UNSET
        bond = None if max_bond is unset else max_bond
        kraus = None if max_kraus is unset else max_kraus
        tol = 1e-12 if svd_tol is unset else svd_tol
        if isinstance(initial, LPDOResult):
            initial = initial.state
        if initial is None:
            state = LPDOState.zero(
                circuit.dims, max_bond=bond, max_kraus=kraus, svd_tol=tol
            )
        elif isinstance(initial, LPDOState):
            state = initial
        elif isinstance(initial, Statevector):
            state = LPDOState.from_statevector(
                initial, max_bond=bond, max_kraus=kraus, svd_tol=tol
            )
        elif isinstance(initial, MPSState):
            # from_mps preserves the MPS's caps, svd_tol, and accumulated
            # truncation_error; explicit per-call options still override.
            state = LPDOState.from_mps(initial, max_kraus=kraus)
            if max_bond is not unset:
                state.max_bond = bond
            if svd_tol is not unset:
                state.svd_tol = tol
        else:
            raise SimulationError(
                f"lpdo backend cannot start from {type(initial).__name__}"
            )
        return LPDOResult(state.evolve(circuit))

    def _prepare(
        self,
        dims: tuple[int, ...],
        digits: tuple[int, ...],
        max_bond: Any = _UNSET,
        max_kraus: Any = _UNSET,
        svd_tol: Any = _UNSET,
        **options: Any,
    ) -> LPDOResult:
        unset = LPDOBackend._UNSET
        return LPDOResult(
            LPDOState.basis(
                dims,
                digits,
                max_bond=None if max_bond is unset else max_bond,
                max_kraus=None if max_kraus is unset else max_kraus,
                svd_tol=1e-12 if svd_tol is unset else svd_tol,
            )
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[SimulationBackend]] = {}


def register_backend(
    name: str, backend_cls: type[SimulationBackend], overwrite: bool = False
) -> None:
    """Register a backend class under a dispatch name.

    Args:
        name: the ``method=`` string workloads will pass.
        backend_cls: a :class:`SimulationBackend` subclass.
        overwrite: allow replacing an existing registration.
    """
    if name == "auto":
        raise SimulationError("'auto' is reserved for the cost-model dispatcher")
    if not overwrite and name in _BACKENDS:
        raise SimulationError(f"backend {name!r} is already registered")
    if not (isinstance(backend_cls, type) and issubclass(backend_cls, SimulationBackend)):
        raise SimulationError("backend_cls must subclass SimulationBackend")
    _BACKENDS[name] = backend_cls


def get_backend(name: str, **defaults: Any) -> SimulationBackend:
    """Instantiate a registered backend with option defaults.

    ``"auto"`` resolves to the cost-model dispatcher
    (:class:`repro.exec.costmodel.AutoBackend`), which picks one of the
    registered engines per circuit from register dims, noise content,
    requested observables, and the memory budget.  The import is lazy so
    the core package never depends on the execution layer at import time.

    Args:
        name: one of :func:`available_backends`.
        **defaults: options applied to every ``run`` / ``prepare`` call
            unless overridden per call.
    """
    if name == "auto":
        from ..exec.costmodel import AutoBackend  # lazy: avoids a cycle

        return AutoBackend(**defaults)
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return backend_cls(**defaults)


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends (plus the ``auto`` dispatcher)."""
    return tuple(sorted([*_BACKENDS, "auto"]))


register_backend("statevector", StatevectorBackend)
register_backend("density", DensityMatrixBackend)
register_backend("trajectories", TrajectoryBackend)
register_backend("mps", MPSBackend)
register_backend("lpdo", LPDOBackend)
