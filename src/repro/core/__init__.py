"""Core qudit substrate: circuit IR, gate library, and simulators.

This subpackage supplies the mixed-dimension qudit support the paper notes
is missing from mainstream qubit-centric toolkits: gates, circuits, exact
and noisy simulation backends, noise channels, and Lindblad dynamics.

**Gate-structure taxonomy** (:mod:`repro.core.structure`): gate matrices
are classified once per instruction as ``diagonal`` (Weyl ``Z``, SNAP,
Kerr, controlled-phase — applied as an O(D) elementwise multiply),
``permutation`` (Weyl ``X``, CSUM, NDAR relabellings — applied as an O(D)
gather), or ``dense`` (matrix contraction).  All simulators dispatch
through the cached classification, so repeated Trotter steps never
re-reshape or re-classify a gate.

**Batched trajectory engine** (:mod:`repro.core.trajectories`): noisy
trajectories evolve as one tensor with a trailing batch axis — one kernel
call per gate for the whole batch, vectorised Born branch selection per
channel, and batched terminal sampling.  See ``BENCH_core.json`` at the
repo root for the measured speedups over the seed implementation.

**Matrix-product-state backend** (:mod:`repro.core.mps`): per-site tensors
with a configurable bond-dimension cap and tracked cumulative truncation
error — cost scales with entanglement instead of register size, reaching
15-20+ qutrit circuits no dense backend can represent.  Structured
(diagonal/permutation) two-site gates apply through a cached
operator-Schmidt bond expansion with no state SVD; non-adjacent two-qudit
gates route via swap insertion.

**Locally-purified density-MPO backend** (:mod:`repro.core.lpdo`): per-site
tensors carry a physical, a Kraus (purification), and two bond legs, so
channels apply *exactly* by growing the Kraus leg — exact noisy evolution
at entanglement-bounded cost, with separate ``truncation_error`` (bond)
and ``purification_error`` (Kraus leg) accounting.  The scalable
replacement for the dense density matrix past ~5 qutrits.

**Backend registry** (:mod:`repro.core.backends`): one dispatch layer —
``get_backend("statevector" | "density" | "trajectories" | "mps" |
"lpdo" | "auto")`` — with
a common ``run(circuit, ...) -> result`` protocol (``expectation``,
``sample``, ``probabilities_of``) so workload layers never hard-code a
simulator.  ``"auto"`` defers to the calibrated cost model in
:mod:`repro.exec.costmodel`, which picks an engine per circuit from
register dims, noise content, requested observables, and memory budget.

**Reproducible randomness** (:mod:`repro.core.rng`): every sampler accepts
a generator, an integer seed, or ``None`` for the shared process-wide
generator — seed it once via :func:`set_global_seed` to replay an entire
noisy study.
"""

from .backends import (
    BackendResult,
    SimulationBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .channels import (
    QuditChannel,
    dephasing,
    dephasing_probability_from_t2,
    depolarizing,
    identity_channel,
    loss_probability_from_t1,
    photon_loss,
    thermal_heating,
    unitary_channel,
    weyl_channel,
)
from .circuit import Instruction, QuditCircuit
from .density import DensityMatrix
from .dims import (
    all_digit_tuples,
    basis_labels,
    digit_matrix,
    digits_to_index,
    index_to_digits,
    total_dim,
    validate_dims,
)
from .exceptions import (
    CircuitError,
    CompilationError,
    DeviceError,
    DimensionError,
    ReproError,
    SimulationError,
    SynthesisError,
)
from .lindblad import (
    LindbladPropagator,
    evolve_lindblad,
    liouvillian,
    unvectorize_density,
    vectorize_density,
)
from .lpdo import LPDOState
from .mps import MPSState, operator_schmidt_factors
from .rng import ensure_rng, global_rng, set_global_seed
from .statevector import Statevector, apply_matrix, apply_matrix_dense, embed_unitary
from .structure import GateStructure, classify_gate
from .trajectories import TrajectorySimulator
from .visualization import draw_circuit, wigner_function, wigner_text

__all__ = [
    "BackendResult",
    "SimulationBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "LPDOState",
    "MPSState",
    "operator_schmidt_factors",
    "QuditChannel",
    "dephasing",
    "dephasing_probability_from_t2",
    "depolarizing",
    "identity_channel",
    "loss_probability_from_t1",
    "photon_loss",
    "thermal_heating",
    "unitary_channel",
    "weyl_channel",
    "Instruction",
    "QuditCircuit",
    "DensityMatrix",
    "all_digit_tuples",
    "basis_labels",
    "digit_matrix",
    "digits_to_index",
    "index_to_digits",
    "total_dim",
    "validate_dims",
    "CircuitError",
    "CompilationError",
    "DeviceError",
    "DimensionError",
    "ReproError",
    "SimulationError",
    "SynthesisError",
    "LindbladPropagator",
    "evolve_lindblad",
    "liouvillian",
    "unvectorize_density",
    "vectorize_density",
    "ensure_rng",
    "global_rng",
    "set_global_seed",
    "Statevector",
    "apply_matrix",
    "apply_matrix_dense",
    "embed_unitary",
    "GateStructure",
    "classify_gate",
    "TrajectorySimulator",
    "draw_circuit",
    "wigner_function",
    "wigner_text",
]
