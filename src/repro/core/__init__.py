"""Core qudit substrate: circuit IR, gate library, and simulators.

This subpackage supplies the mixed-dimension qudit support the paper notes
is missing from mainstream qubit-centric toolkits: gates, circuits, exact
and noisy simulation backends, noise channels, and Lindblad dynamics.
"""

from .channels import (
    QuditChannel,
    dephasing,
    dephasing_probability_from_t2,
    depolarizing,
    identity_channel,
    loss_probability_from_t1,
    photon_loss,
    thermal_heating,
    unitary_channel,
    weyl_channel,
)
from .circuit import Instruction, QuditCircuit
from .density import DensityMatrix
from .dims import (
    all_digit_tuples,
    basis_labels,
    digit_matrix,
    digits_to_index,
    index_to_digits,
    total_dim,
    validate_dims,
)
from .exceptions import (
    CircuitError,
    CompilationError,
    DeviceError,
    DimensionError,
    ReproError,
    SimulationError,
    SynthesisError,
)
from .lindblad import (
    LindbladPropagator,
    evolve_lindblad,
    liouvillian,
    unvectorize_density,
    vectorize_density,
)
from .statevector import Statevector, apply_matrix, embed_unitary
from .trajectories import TrajectorySimulator
from .visualization import draw_circuit, wigner_function, wigner_text

__all__ = [
    "QuditChannel",
    "dephasing",
    "dephasing_probability_from_t2",
    "depolarizing",
    "identity_channel",
    "loss_probability_from_t1",
    "photon_loss",
    "thermal_heating",
    "unitary_channel",
    "weyl_channel",
    "Instruction",
    "QuditCircuit",
    "DensityMatrix",
    "all_digit_tuples",
    "basis_labels",
    "digit_matrix",
    "digits_to_index",
    "index_to_digits",
    "total_dim",
    "validate_dims",
    "CircuitError",
    "CompilationError",
    "DeviceError",
    "DimensionError",
    "ReproError",
    "SimulationError",
    "SynthesisError",
    "LindbladPropagator",
    "evolve_lindblad",
    "liouvillian",
    "unvectorize_density",
    "vectorize_density",
    "Statevector",
    "apply_matrix",
    "embed_unitary",
    "TrajectorySimulator",
    "draw_circuit",
    "wigner_function",
    "wigner_text",
]
