"""Locally-purified density-operator (density-MPO) simulation of noisy registers.

The dense :class:`~repro.core.density.DensityMatrix` is exact but ``O(D^2)``
in memory, capping the paper's noise studies near 5 qutrits; the MPS backend
scales but unravels channels *stochastically*, so every noisy expectation
carries Monte-Carlo error.  This module closes the gap: a **locally purified
density operator** stores one rank-4 tensor per site,

    ``A_i`` of shape ``(chi_left, d_i, kappa_i, chi_right)``,

with a *physical* leg ``d_i``, a *Kraus* (purification) leg ``kappa_i``, and
the usual bonds.  The encoded state is ``rho = X X†`` where ``X`` is the MPS
over the joint ``(physical, Kraus)`` legs — positivity is structural, never
enforced numerically.

* **Unitaries** act on the physical legs exactly as in
  :class:`~repro.core.mps.MPSState` and reuse the same structured-gate
  taxonomy: diagonal/permutation gates on adjacent pairs apply through the
  cached operator-Schmidt bond expansion (no state SVD), dense gates merge
  a theta tensor and split with truncated SVD, and non-adjacent pairs route
  via swap insertion.  Discarded Born weight accumulates in
  :attr:`LPDOState.truncation_error`.
* **Channels are exact, not sampled**: applying Kraus family ``{K_m}``
  grows the target site's Kraus leg by the factor ``m`` —
  ``A'[l, p', (k, m), r] = sum_p K_m[p', p] A[l, p, k, r]`` — which
  reproduces ``rho' = sum_m K_m rho K_m†`` with *zero* stochastic noise.
  The grown leg is then recompressed by an SVD that is lossless up to the
  leg's exact rank and, past ``max_kraus``, lossy with the discarded
  trace weight tracked in :attr:`LPDOState.purification_error`.
* **Observables** (``expectation`` / ``sample`` / ``probabilities_of``)
  contract the purification double layer locally — no dense object is ever
  built, so exact noisy evolution reaches 12-16+ qutrit registers whose
  density matrix (``3^24`` entries) could never be allocated.

A canonical-form interval is maintained exactly as in the MPS backend
(QR sweeps over the joint ``(physical, Kraus)`` leg), so truncations are
locally optimal and expectations contract only the non-orthogonal segment.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from . import budget as _budget
from .circuit import Instruction, QuditCircuit
from .dims import validate_dims
from .exceptions import DimensionError, SimulationError
from .mps import MPSState, _classify_observable, _sorted_gate, operator_schmidt_factors
from .rng import ensure_rng, sanitize_probabilities
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .structure import DIAGONAL, PERMUTATION, GateStructure, classify_gate
from .tensor_utils import qr_step_left, qr_step_right, truncated_svd

__all__ = ["LPDOState"]

#: Refuse to densify (``to_density_matrix`` / ``probabilities``) above this
#: many density-matrix entries — at that point the LPDO *is* the state.
_DENSE_CAP = 1 << 22


class LPDOState:
    """A (possibly mixed) qudit-register state in locally-purified form.

    Args:
        tensors: per-site tensors of shape ``(chi_l, d_i, kappa_i, chi_r)``
            with matching bonds; the first/last bonds must be 1.
        dims: per-site physical dimensions (validated against the tensors).
        max_bond: bond-dimension cap ``chi``; ``None`` evolves the bond
            exactly.
        max_kraus: Kraus-leg cap ``kappa``; ``None`` keeps every leg at its
            exact rank (lossless recompression only) — full accuracy, with
            memory growing as channels accumulate mixedness.
        svd_tol: relative singular-value cutoff shared by bond and Kraus
            truncations.

    Example:
        >>> from repro.core.channels import dephasing
        >>> qc = QuditCircuit([3, 3]); qc.fourier(0); qc.csum(0, 1)
        >>> qc.channel(dephasing(3, 0.5).kraus, 0, name="deph")
        >>> rho = LPDOState.zero([3, 3]).evolve(qc)
        >>> round(rho.probabilities_of([1, 1]), 3)
        0.333
    """

    def __init__(
        self,
        tensors: Sequence[np.ndarray],
        dims: Sequence[int],
        *,
        max_bond: int | None = None,
        max_kraus: int | None = None,
        svd_tol: float = 1e-12,
    ) -> None:
        dims = validate_dims(dims)
        if len(tensors) != len(dims):
            raise DimensionError(
                f"{len(tensors)} tensors for a {len(dims)}-site register"
            )
        tensors = [np.asarray(t, dtype=complex) for t in tensors]
        bond = 1
        for i, (t, d) in enumerate(zip(tensors, dims)):
            if t.ndim != 4 or t.shape[1] != d or t.shape[0] != bond:
                raise DimensionError(
                    f"site {i} tensor has shape {t.shape}; expected "
                    f"({bond}, {d}, *, *)"
                )
            bond = t.shape[3]
        if bond != 1:
            raise DimensionError(f"final bond dimension {bond} != 1")
        if max_bond is not None and max_bond < 1:
            raise SimulationError("max_bond must be >= 1")
        if max_kraus is not None and max_kraus < 1:
            raise SimulationError("max_kraus must be >= 1")
        self._tensors = tensors
        self._dims = list(dims)
        self.max_bond = max_bond
        self.max_kraus = max_kraus
        self.svd_tol = float(svd_tol)
        #: Cumulative trace weight discarded by bond-truncating SVDs.
        self.truncation_error = 0.0
        #: Cumulative trace weight discarded by Kraus-leg truncations.
        self.purification_error = 0.0
        # Canonical interval: sites < lo are left-orthogonal, > hi right-.
        self._lo = 0
        self._hi = 0 if self._is_product() else len(dims) - 1

    def _is_product(self) -> bool:
        return all(t.shape[0] == 1 and t.shape[3] == 1 for t in self._tensors)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(
        cls,
        dims: Sequence[int],
        *,
        max_bond: int | None = None,
        max_kraus: int | None = None,
        svd_tol: float = 1e-12,
    ) -> "LPDOState":
        """The all-|0> pure product state."""
        return cls.basis(
            dims,
            [0] * len(validate_dims(dims)),
            max_bond=max_bond,
            max_kraus=max_kraus,
            svd_tol=svd_tol,
        )

    @classmethod
    def basis(
        cls,
        dims: Sequence[int],
        digits: Sequence[int],
        *,
        max_bond: int | None = None,
        max_kraus: int | None = None,
        svd_tol: float = 1e-12,
    ) -> "LPDOState":
        """Computational basis state ``|digits><digits|`` (all legs size 1)."""
        dims = validate_dims(dims)
        if len(digits) != len(dims):
            raise DimensionError(
                f"{len(digits)} digits for a {len(dims)}-site register"
            )
        tensors = []
        for d, k in zip(dims, digits):
            if not 0 <= int(k) < d:
                raise DimensionError(f"digit {k} out of range for dim {d}")
            t = np.zeros((1, d, 1, 1), dtype=complex)
            t[0, int(k), 0, 0] = 1.0
            tensors.append(t)
        return cls(
            tensors, dims, max_bond=max_bond, max_kraus=max_kraus, svd_tol=svd_tol
        )

    @classmethod
    def from_mps(
        cls,
        mps: MPSState,
        *,
        max_kraus: int | None = None,
    ) -> "LPDOState":
        """Pure-state LPDO of an MPS (every Kraus leg is size 1).

        The source's ``max_bond`` / ``svd_tol`` and — crucially — its
        accumulated ``truncation_error`` carry over, so the error account
        stays honest when a bounded-chi MPS seeds a noisy LPDO run.
        """
        out = cls(
            [t[:, :, None, :] for t in mps._tensors],
            mps.dims,
            max_bond=mps.max_bond,
            max_kraus=max_kraus,
            svd_tol=mps.svd_tol,
        )
        out.truncation_error = mps.truncation_error
        out._lo, out._hi = mps._lo, mps._hi
        return out

    @classmethod
    def from_statevector(
        cls,
        state,
        *,
        max_bond: int | None = None,
        max_kraus: int | None = None,
        svd_tol: float = 1e-12,
    ) -> "LPDOState":
        """Pure-state LPDO of a dense state (every Kraus leg is size 1)."""
        out = cls.from_mps(
            MPSState.from_statevector(state, max_bond=max_bond, svd_tol=svd_tol),
            max_kraus=max_kraus,
        )
        return out

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def dims(self) -> tuple[int, ...]:
        """Per-site physical dimensions."""
        return tuple(self._dims)

    @property
    def num_sites(self) -> int:
        """Number of register sites."""
        return len(self._dims)

    @property
    def dim(self) -> int:
        """Total Hilbert-space dimension (python int; may be astronomically large)."""
        out = 1
        for d in self._dims:
            out *= d
        return out

    def bond_dimensions(self) -> tuple[int, ...]:
        """Current bond dimension at each of the ``n - 1`` internal bonds."""
        return tuple(t.shape[3] for t in self._tensors[:-1])

    def kraus_dimensions(self) -> tuple[int, ...]:
        """Current Kraus-leg dimension at each site (1 while pure)."""
        return tuple(t.shape[2] for t in self._tensors)

    def site_tensor(self, i: int) -> np.ndarray:
        """The (read-only view of the) tensor at site ``i``."""
        return self._tensors[i]

    def copy(self) -> "LPDOState":
        """Cheap copy (tensors are replaced, never mutated, so sharing is safe)."""
        out = LPDOState.__new__(LPDOState)
        out._tensors = list(self._tensors)
        out._dims = list(self._dims)
        out.max_bond = self.max_bond
        out.max_kraus = self.max_kraus
        out.svd_tol = self.svd_tol
        out.truncation_error = self.truncation_error
        out.purification_error = self.purification_error
        out._lo, out._hi = self._lo, self._hi
        return out

    # ------------------------------------------------------------------
    # canonical-form maintenance (joint (physical, Kraus) leg)
    # ------------------------------------------------------------------
    def _qr_step_right(self, i: int) -> None:
        """Left-orthogonalise site ``i``, absorbing the remainder rightward."""
        qr_step_right(self._tensors, i)
        self._lo = i + 1
        self._hi = max(self._hi, i + 1)

    def _qr_step_left(self, i: int) -> None:
        """Right-orthogonalise site ``i``, absorbing the remainder leftward."""
        qr_step_left(self._tensors, i)
        self._hi = i - 1
        self._lo = min(self._lo, i - 1)

    def _canonicalize(self, lo: int, hi: int) -> None:
        """Shrink the non-orthogonal interval into ``[lo, hi]``."""
        while self._lo < lo:
            self._qr_step_right(self._lo)
        while self._hi > hi:
            self._qr_step_left(self._hi)

    def _trace_from_interval(self) -> float:
        """``Tr(rho)`` via contraction of the non-orthogonal segment only."""
        env = None
        for i in range(self._lo, min(self._hi, self.num_sites - 1) + 1):
            t = self._tensors[i]
            if env is None:
                env = np.einsum("ldkr,ldks->rs", t.conj(), t)
            else:
                env = np.einsum(
                    "xy,xdkr,ydks->rs", env, t.conj(), t, optimize=True
                )
        return float(np.real(np.trace(env)))

    def trace(self) -> float:
        """``Tr(rho)`` — 1 for physical states up to truncation rescaling."""
        return self._trace_from_interval()

    # ------------------------------------------------------------------
    # SVD splitting (bond) and Kraus-leg recompression
    # ------------------------------------------------------------------
    def _split_once(self, mat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Truncated SVD split of one flattened theta matrix.

        Keeps at most ``max_bond`` singular values above the relative
        tolerance, accumulates the discarded trace fraction into
        :attr:`truncation_error`, and rescales the kept spectrum so
        ``Tr(rho)`` is preserved.
        """
        if _tracing.enabled:
            with _tracing.span("truncated_svd", backend="lpdo") as ev:
                left, right, discarded = truncated_svd(
                    mat, max_keep=self.max_bond, rel_tol=self.svd_tol
                )
                ev["args"]["chi"] = int(left.shape[1])
        else:
            left, right, discarded = truncated_svd(
                mat, max_keep=self.max_bond, rel_tol=self.svd_tol
            )
        if discarded > 1e-16:
            self.truncation_error += discarded
        _budget.record_truncation(float(discarded), int(left.shape[1]))
        if _metrics.enabled:
            _metrics.set_gauge("bond_dim", left.shape[1], backend="lpdo")
            _metrics.set_gauge(
                "truncation_error", self.truncation_error, backend="lpdo"
            )
        return left, right

    def _split_run(self, start: int, theta: np.ndarray) -> None:
        """Split a merged ``(l, d_1, k_1, .., d_m, k_m, r)`` theta into sites.

        Leaves the orthogonality centre on the last site of the run.
        """
        m = (theta.ndim - 2) // 2
        for j in range(m - 1):
            l, d, k = theta.shape[0], theta.shape[1], theta.shape[2]
            rest = theta.shape[3:]
            left, right = self._split_once(theta.reshape(l * d * k, -1))
            self._tensors[start + j] = left.reshape(l, d, k, -1)
            theta = right.reshape((right.shape[0],) + rest)
        self._tensors[start + m - 1] = theta
        self._lo = self._hi = start + m - 1

    def _exact_cap(self, i: int) -> int:
        """Upper bound on the purification's Schmidt rank across bond ``i``."""
        left = 1
        for t in self._tensors[: i + 1]:
            left *= t.shape[1] * t.shape[2]
        right = 1
        for t in self._tensors[i + 1:]:
            right *= t.shape[1] * t.shape[2]
        return min(left, right)

    def _truncate_bond(self, i: int) -> None:
        """Re-compress the bond between sites ``i`` and ``i + 1``."""
        self._canonicalize(i, i + 1)
        theta = np.einsum(
            "ldkr,rems->ldkems", self._tensors[i], self._tensors[i + 1]
        )
        self._split_run(i, theta)

    def _shrink_bond_from_centre(self, i: int) -> None:
        """Optimally truncate the bond left of site ``i`` without a theta merge.

        Requires the canonical centre to sit at ``i`` (its left neighbour
        left-orthogonal): the Schmidt spectrum across that bond is then the
        singular spectrum of the centre's ``(chi_l, d k chi_r)`` unfolding,
        so one small SVD truncates the bond and the kept left basis is
        absorbed into the (still left-orthogonal) neighbour — far cheaper
        than merging the two sites when either Kraus leg is wide.
        """
        t = self._tensors[i]
        l, d, k, r = t.shape
        if _tracing.enabled:
            with _tracing.span("truncated_svd", backend="lpdo") as ev:
                left, right, discarded = truncated_svd(
                    t.reshape(l, d * k * r),
                    max_keep=self.max_bond,
                    rel_tol=self.svd_tol,
                )
                ev["args"]["chi"] = int(left.shape[1])
        else:
            left, right, discarded = truncated_svd(
                t.reshape(l, d * k * r),
                max_keep=self.max_bond,
                rel_tol=self.svd_tol,
            )
        if discarded > 1e-16:
            self.truncation_error += discarded
        _budget.record_truncation(float(discarded), int(left.shape[1]))
        if _metrics.enabled:
            _metrics.set_gauge("bond_dim", left.shape[1], backend="lpdo")
            _metrics.set_gauge(
                "truncation_error", self.truncation_error, backend="lpdo"
            )
        self._tensors[i - 1] = np.tensordot(
            self._tensors[i - 1], left, axes=(3, 0)
        )
        self._tensors[i] = right.reshape(-1, d, k, r)

    def _truncate_kraus(self, site: int) -> None:
        """Recompress site ``site``'s Kraus leg after a channel grew it.

        The encoded state depends on the leg only through ``M M†`` with
        ``M`` the ``(l*d*r, kappa)`` unfolding, so an SVD keeping the
        leading singular triplets is lossless up to the leg's *numerical*
        rank and — past ``max_kraus`` — discards trace weight tracked in
        :attr:`purification_error` (the kept spectrum is rescaled so the
        trace is preserved).  Recompression runs after every channel:
        without it the leg would multiply by the Kraus count per channel
        even when the state's mixedness (the actual rank) has saturated.
        """
        t = self._tensors[site]
        k = t.shape[2]
        cap = self.max_kraus
        if k <= 1 or (k <= 2 and (cap is None or k <= cap)):
            return
        self._tensors[site] = self._compress_kraus_leg(t, cap)
        # The isometric leg rotation is only trace-preserving, not
        # orthogonality-preserving, once values are discarded — widen the
        # canonical interval so later contractions stay exact.
        self._lo = min(self._lo, site)
        self._hi = max(self._hi, site)

    def _compress_kraus_leg(self, t: np.ndarray, cap: int | None) -> np.ndarray:
        """Compress a rank-4 tensor's Kraus axis, recording discarded weight.

        Eigendecomposition of the ``kappa x kappa`` Gram matrix: same
        ``O(l d r kappa^2)`` flops as an SVD of the tall unfolding, but the
        dominant cost is a GEMM instead of a bidiagonalisation, and the
        (never needed) left factor is not computed.
        """
        l, d, k, r = t.shape
        mat = t.transpose(0, 1, 3, 2).reshape(l * d * r, k)
        gram = mat.conj().T @ mat
        lam, vec = np.linalg.eigh(gram)
        lam = np.clip(lam[::-1], 0.0, None)  # descending spectrum (= s^2)
        vec = vec[:, ::-1]
        if lam[0] <= 0:
            raise SimulationError("cannot recompress a zero Kraus leg")
        # The squared-tolerance threshold is floored at the Gram-eigh noise
        # scale: relative eigenvalue noise is ~eps, so anything below it is
        # numerically zero — without the floor svd_tol**2 (e.g. 1e-24)
        # keeps pure noise directions and legs never shrink to their rank.
        tol = max(self.svd_tol**2, 64.0 * np.finfo(float).eps)
        keep = lam > tol * lam[0]
        if cap is not None:
            keep[cap:] = False
        keep[0] = True
        total = float(np.sum(lam))
        kept = float(np.sum(lam[keep]))
        discarded = 1.0 - kept / total
        if discarded > 1e-16:
            self.purification_error += discarded
        _budget.record_purification(
            float(discarded), int(np.count_nonzero(keep))
        )
        new = (mat @ vec[:, keep]) * np.sqrt(total / kept)
        if _metrics.enabled:
            _metrics.set_gauge(
                "kraus_dim", int(np.count_nonzero(keep)), backend="lpdo"
            )
            _metrics.set_gauge(
                "purification_error", self.purification_error, backend="lpdo"
            )
        return np.ascontiguousarray(
            new.reshape(l, d, r, -1).transpose(0, 1, 3, 2)
        )

    # ------------------------------------------------------------------
    # gate application (physical legs; Kraus legs ride along)
    # ------------------------------------------------------------------
    def _apply_site(
        self,
        site: int,
        matrix: np.ndarray,
        structure: GateStructure,
        unitary: bool = True,
    ) -> None:
        """Contract a one-site operator into the physical leg (never any SVD)."""
        t = self._tensors[site]
        if structure.kind == DIAGONAL:
            t = t * structure.diag[None, :, None, None]
        elif structure.kind == PERMUTATION:
            t = t.take(structure.source, axis=1)
            if structure.values is not None:
                t = t * structure.values[None, :, None, None]
        else:
            t = np.einsum("ab,lbkr->lakr", matrix, t)
        self._tensors[site] = t
        if not unitary:
            self._lo = min(self._lo, site)
            self._hi = max(self._hi, site)

    def _merge_theta(self, start: int, m: int) -> np.ndarray:
        """Merge sites ``start .. start + m - 1`` into one theta tensor."""
        theta = self._tensors[start]
        for j in range(1, m):
            theta = np.tensordot(theta, self._tensors[start + j], axes=(-1, 0))
        return theta

    def _apply_theta(
        self, theta: np.ndarray, matrix: np.ndarray, structure: GateStructure
    ) -> np.ndarray:
        """Apply an operator to a merged theta's joint *physical* axis.

        The theta's legs interleave as ``(l, d_1, k_1, .., d_m, k_m, r)``;
        the physical legs are gathered to the front, transformed through
        the structure fast path, and scattered back.
        """
        m = (theta.ndim - 2) // 2
        if m == 1:
            flat = theta.reshape(theta.shape[0], structure.dim, -1)
            moved = None
        else:
            perm = (
                [0]
                + [1 + 2 * j for j in range(m)]
                + [2 + 2 * j for j in range(m)]
                + [theta.ndim - 1]
            )
            moved = np.transpose(theta, perm)
            flat = moved.reshape(moved.shape[0], structure.dim, -1)
        if structure.kind == DIAGONAL:
            flat = flat * structure.diag[None, :, None]
        elif structure.kind == PERMUTATION:
            flat = flat.take(structure.source, axis=1)
            if structure.values is not None:
                flat = flat * structure.values[None, :, None]
        else:
            flat = np.einsum("ab,lbr->lar", matrix, flat)
        if moved is None:
            return flat.reshape(theta.shape)
        out = flat.reshape(moved.shape)
        return np.transpose(out, np.argsort(perm))

    def _expand_pair(
        self, start: int, left: np.ndarray, right: np.ndarray
    ) -> None:
        """Bond-expansion application of ``sum_q left[q] (x) right[q]``.

        No state SVD: the shared bond is multiplied by the operator
        Schmidt rank, with the Kraus legs untouched.
        """
        a, b = self._tensors[start], self._tensors[start + 1]
        terms = left.shape[0]
        la, da, ka, ra = a.shape
        lb, db, kb, rb = b.shape
        new_a = np.einsum("qab,lbkr->lakrq", left, a).reshape(
            la, da, ka, ra * terms
        )
        new_b = np.einsum("qcb,lbkr->lqckr", right, b).reshape(
            lb * terms, db, kb, rb
        )
        self._tensors[start] = new_a
        self._tensors[start + 1] = new_b
        self._lo = min(self._lo, start)
        self._hi = max(self._hi, start + 1)

    def _apply_run(
        self, start: int, m: int, matrix: np.ndarray, structure: GateStructure
    ) -> None:
        """Apply an operator to ``m`` contiguous sites starting at ``start``."""
        if m == 1:
            self._apply_site(start, matrix, structure)
            return
        if m == 2 and structure.kind in (DIAGONAL, PERMUTATION):
            d_left, d_right = self._dims[start], self._dims[start + 1]
            key = ("op_schmidt", d_left, d_right)
            factors = structure.plans.get(key)
            if factors is None:
                factors = operator_schmidt_factors(
                    structure.matrix, d_left, d_right
                )
                structure.plans[key] = factors
            left, right = factors
            bond = self._tensors[start].shape[3]
            new_bond = bond * left.shape[0]
            if self.max_bond is None or new_bond <= self.max_bond:
                self._expand_pair(start, left, right)
                if new_bond > min(
                    self.max_bond or new_bond, self._exact_cap(start)
                ):
                    self._truncate_bond(start)
                return
        self._canonicalize(start, start + m - 1)
        theta = self._apply_theta(self._merge_theta(start, m), matrix, structure)
        self._split_run(start, theta)

    def _swap_adjacent(self, i: int) -> None:
        """Exchange sites ``i`` and ``i + 1`` (theta transpose + SVD split)."""
        self._canonicalize(i, i + 1)
        theta = np.einsum(
            "ldkr,rems->ldkems", self._tensors[i], self._tensors[i + 1]
        )
        theta = theta.transpose(0, 3, 4, 1, 2, 5)
        self._dims[i], self._dims[i + 1] = self._dims[i + 1], self._dims[i]
        self._split_run(i, theta)

    def _route_and_apply(self, targets, apply_fn) -> None:
        """Swap distant pair targets adjacent, run ``apply_fn``, swap back."""
        u, v = targets
        for j in range(v - 1, u, -1):
            self._swap_adjacent(j)
        apply_fn(u)
        for j in range(u + 1, v):
            self._swap_adjacent(j)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: int | Sequence[int],
        structure: GateStructure | None = None,
    ) -> None:
        """Apply a unitary to the target wires (in place): ``U rho U†``.

        Targets must be a single wire, a contiguous run of wires (any
        order), or two arbitrary wires (routed via swap insertion).
        """
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        matrix = np.asarray(matrix, dtype=complex)
        structure, targets = _sorted_gate(matrix, structure, targets, self._dims)
        for t in targets:
            if not 0 <= t < self.num_sites:
                raise SimulationError(f"wire {t} out of range")
        if _metrics.enabled or _tracing.enabled:
            _metrics.inc("gate_applies", backend="lpdo", kind=structure.kind)
            with _tracing.span("gate_apply", backend="lpdo", kind=structure.kind):
                self._dispatch_gate(targets, structure)
            return
        self._dispatch_gate(targets, structure)

    def _dispatch_gate(self, targets: tuple[int, ...], structure) -> None:
        """Route a validated, sorted gate to the contiguous-run kernel."""
        m = len(targets)
        first = targets[0]
        if targets == tuple(range(first, first + m)):
            self._apply_run(first, m, structure.matrix, structure)
            return
        if m != 2:
            raise SimulationError(
                f"LPDO gates must target one wire, a contiguous run, or two "
                f"wires; got {targets}"
            )
        self._route_and_apply(
            targets,
            lambda start: self._apply_run(
                start, 2, structure.matrix, structure
            ),
        )

    # ------------------------------------------------------------------
    # channels (exact: the Kraus leg absorbs the sum over operators)
    # ------------------------------------------------------------------
    def _apply_kraus_pair(self, start: int, ops) -> None:
        """Exactly apply a Kraus family on the adjacent pair ``(start, start+1)``.

        The *whole family* is Schmidt-split across the bond cut —
        ``K_m = sum_q A_q (x) B_{q,m}`` with rank ``R <= d_left^2`` — so
        each site absorbs a small local factor (bond grows by ``R``, the
        right site's Kraus leg by the Kraus count ``M``) and no merged
        theta carrying all ``M`` branches is ever materialised.  Large
        families (a joint depolarising channel has ``(d_l d_r)^2``
        operators) are accumulated onto the leg in chunks with interim
        recompressions, so the peak leg size — and with it the Gram-matrix
        cost — stays bounded instead of scaling with ``M``.  Both grown
        legs are recompressed at the end with the site at the
        orthogonality centre, so the recorded ``purification_error`` /
        ``truncation_error`` fractions are exact trace weights (interim
        chunk compressions account in the local frame).
        """
        d_left, d_right = self._dims[start], self._dims[start + 1]
        count = len(ops)
        family = np.stack([op for op, _ in ops]).reshape(
            count, d_left, d_right, d_left, d_right
        )
        mat = family.transpose(1, 3, 2, 4, 0).reshape(
            d_left * d_left, d_right * d_right * count
        )
        u, s, vh = np.linalg.svd(mat, full_matrices=False)
        keep = s > 1e-14 * s[0]
        u, s, vh = u[:, keep], s[keep], vh[keep]
        root = np.sqrt(s)
        left = (u * root).T.reshape(-1, d_left, d_left)
        right = (root[:, None] * vh).reshape(-1, d_right, d_right, count)
        self._canonicalize(start, start + 1)
        a, b = self._tensors[start], self._tensors[start + 1]
        la, _, ka, ra = a.shape
        lb, _, kb, rb = b.shape
        rank = left.shape[0]
        new_a = np.einsum("qab,lbkr->lakrq", left, a).reshape(
            la, d_left, ka, ra * rank
        )
        cap = self.max_kraus
        limit = 64 if cap is None else max(4 * cap, 32)
        step = max(1, limit // max(kb, 1))
        acc = None
        for first_op in range(0, count, step):
            block = right[:, :, :, first_op:first_op + step]
            piece = np.einsum(
                "qcbm,lbkr->lqckmr", block, b, optimize=True
            ).reshape(lb * rank, d_right, kb * block.shape[3], rb)
            acc = (
                piece
                if acc is None
                else np.concatenate((acc, piece), axis=2)
            )
            if acc.shape[2] > limit and first_op + step < count:
                acc = self._compress_kraus_leg(
                    acc, None if cap is None else limit
                )
        self._tensors[start] = new_a
        self._tensors[start + 1] = acc
        self._lo = min(self._lo, start)
        self._hi = max(self._hi, start + 1)
        # Move the centre onto the grown site so both recompressions are
        # locally optimal, shed the Kraus growth first (it makes the bond
        # SVD that follows cheaper), then reel the expanded bond back in.
        self._canonicalize(start + 1, start + 1)
        self._truncate_kraus(start + 1)
        self._shrink_bond_from_centre(start + 1)

    def _apply_kraus_run(self, start: int, m: int, ops) -> None:
        """Exactly apply a Kraus family on ``m`` contiguous sites.

        ``rho' = sum_m K_m rho K_m†`` is reproduced with no sampling: one
        site absorbs the family directly on its Kraus leg, a pair goes
        through the family bond-split (:meth:`_apply_kraus_pair`), and
        longer runs (rare) stack every branch on a merged theta.
        """
        if m == 2:
            self._apply_kraus_pair(start, ops)
            return
        self._canonicalize(start, start + m - 1)
        theta = self._merge_theta(start, m)
        branches = [self._apply_theta(theta, op, st) for op, st in ops]
        stacked = np.stack(branches, axis=-2)
        merged = stacked.reshape(
            theta.shape[:-2] + (theta.shape[-2] * len(ops), theta.shape[-1])
        )
        if m == 1:
            self._tensors[start] = merged
            self._lo = min(self._lo, start)
            self._hi = max(self._hi, start)
        else:
            self._split_run(start, merged)
        self._truncate_kraus(start + m - 1)

    def _apply_channel(self, instruction: Instruction) -> None:
        """Exactly apply one channel instruction (contiguous or 2 distant wires)."""
        targets = instruction.qudits
        structures = instruction.kraus_structures()
        ops = []
        for op, st in zip(instruction.kraus, structures):
            st, _sorted = _sorted_gate(op, st, targets, self._dims)
            ops.append((st.matrix, st))
        targets = tuple(sorted(int(t) for t in targets))
        m = len(targets)
        contiguous = targets == tuple(range(targets[0], targets[0] + m))
        if contiguous:
            self._apply_kraus_run(targets[0], m, ops)
            return
        if m != 2:
            raise SimulationError(
                f"LPDO channels must target one wire, a contiguous run, or "
                f"two wires; got {targets}"
            )
        self._route_and_apply(
            targets, lambda start: self._apply_kraus_run(start, 2, ops)
        )

    def _reset_site(self, site: int) -> None:
        """Trace out one wire and re-prepare it in |0> (exact, no sampling)."""
        d = self._dims[site]
        ops = []
        for level in range(d):
            op = np.zeros((d, d), dtype=complex)
            op[0, level] = 1.0
            ops.append((op, classify_gate(op)))
        self._apply_kraus_run(site, 1, ops)

    # ------------------------------------------------------------------
    # circuit evolution
    # ------------------------------------------------------------------
    def apply_instruction(self, instruction: Instruction, rng=None) -> None:
        """Apply one circuit instruction in place.

        Args:
            instruction: unitary / channel / measure / reset instruction.
            rng: accepted for API symmetry with the stochastic backends and
                ignored — LPDO evolution is fully deterministic.
        """
        if instruction.kind == "unitary":
            self.apply_unitary(
                instruction.matrix,
                instruction.qudits,
                structure=instruction.structure(),
            )
        elif instruction.kind == "channel":
            self._apply_channel(instruction)
        elif instruction.kind == "measure":
            pass  # terminal measurement is implicit in sampling
        elif instruction.kind == "reset":
            self._reset_site(instruction.qudits[0])
        else:  # pragma: no cover - kinds validated at circuit build time
            raise SimulationError(f"unknown kind {instruction.kind}")

    def evolve(self, circuit: QuditCircuit, rng=None) -> "LPDOState":
        """Run a circuit and return the evolved state (self is unchanged).

        Channels are applied *exactly* through the Kraus leg — unlike the
        MPS backend there is nothing stochastic here, so one evolution is
        the full noisy answer (``rng`` is accepted and ignored).
        """
        if circuit.dims != self.dims:
            raise DimensionError(
                f"circuit dims {circuit.dims} != state dims {self.dims}"
            )
        out = self.copy()
        for instruction in circuit:
            out.apply_instruction(instruction)
        return out

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> complex:
        """``Tr(rho O) / Tr(rho)`` of a local operator.

        Supports one wire, a contiguous run of wires, and two arbitrary
        wires (contracted through the intervening transfer matrices via the
        operator-Schmidt decomposition — no swaps, no truncation).
        """
        if targets is None:
            targets = tuple(range(self.num_sites))
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        operator = np.asarray(operator, dtype=complex)
        structure, targets = _sorted_gate(
            operator, _classify_observable(operator), targets, self._dims
        )
        operator = structure.matrix
        m = len(targets)
        first = targets[0]
        if targets == tuple(range(first, first + m)):
            expected = 1
            for t in targets:
                expected *= self._dims[t]
            if operator.shape != (expected, expected):
                raise DimensionError(
                    f"operator shape {operator.shape} does not span wires "
                    f"{targets} (dimension {expected})"
                )
            self._canonicalize(first, first + m - 1)
            theta = self._merge_theta(first, m)
            transformed = self._apply_theta(theta, operator, structure)
            value = complex(np.vdot(theta, transformed))
            denom = float(np.real(np.vdot(theta, theta)))
            return value / denom
        if m != 2:
            raise SimulationError(
                f"LPDO expectation targets must be one wire, a contiguous "
                f"run, or two wires; got {targets}"
            )
        u, v = targets
        key = ("op_schmidt", self._dims[u], self._dims[v])
        factors = structure.plans.get(key)
        if factors is None:
            factors = operator_schmidt_factors(
                operator, self._dims[u], self._dims[v]
            )
            structure.plans[key] = factors
        left, right = factors
        self._canonicalize(u, v)
        a_u = self._tensors[u]
        envs = np.einsum("xdkr,qdc,xcks->qrs", a_u.conj(), left, a_u)
        norm_env = np.einsum("xdkr,xdks->rs", a_u.conj(), a_u)
        for j in range(u + 1, v):
            t = self._tensors[j]
            envs = np.einsum(
                "qxy,xdkr,ydks->qrs", envs, t.conj(), t, optimize=True
            )
            norm_env = np.einsum(
                "xy,xdkr,ydks->rs", norm_env, t.conj(), t, optimize=True
            )
        a_v = self._tensors[v]
        value = complex(
            np.einsum(
                "qxy,xdkr,qdc,yckr->", envs, a_v.conj(), right, a_v,
                optimize=True,
            )
        )
        denom = float(
            np.real(np.einsum("xy,xdkr,ydkr->", norm_env, a_v.conj(), a_v))
        )
        return value / denom

    def probabilities_of(self, digits: Sequence[int]) -> float:
        """Probability ``<digits| rho |digits> / Tr(rho)`` in ``O(n chi^3 kappa)``."""
        if len(digits) != self.num_sites:
            raise DimensionError(
                f"{len(digits)} digits for a {self.num_sites}-site register"
            )
        env = np.ones((1, 1), dtype=complex)
        for t, digit in zip(self._tensors, digits):
            block = t[:, int(digit)]
            env = np.einsum(
                "xy,xkr,yks->rs", env, block.conj(), block, optimize=True
            )
        value = float(np.real(env[0, 0]))
        return value / self._trace_from_interval()

    # Alias matching the dense DensityMatrix surface.
    probability_of = probabilities_of

    def sample(
        self,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Draw computational-basis outcomes by sequential site sampling.

        Each shot walks the chain once with a ``chi x chi`` conditional
        environment — no dense probability vector is ever built.
        """
        if shots < 1:
            raise SimulationError("need at least one shot")
        rng = ensure_rng(rng)
        self._canonicalize(0, 0)
        counts: dict[tuple[int, ...], int] = {}
        for _ in range(shots):
            env = np.ones((1, 1), dtype=complex)
            digits = []
            for t in self._tensors:
                cond = np.einsum(
                    "xy,xdkr,ydks->drs", env, t.conj(), t, optimize=True
                )
                probs = sanitize_probabilities(
                    np.trace(cond, axis1=1, axis2=2)
                )
                outcome = int(rng.choice(len(probs), p=probs))
                digits.append(outcome)
                weight = float(np.real(np.trace(cond[outcome])))
                env = cond[outcome] / weight
            key = tuple(digits)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # densification (small registers only)
    # ------------------------------------------------------------------
    def to_density_matrix(self):
        """Contract into a dense :class:`~repro.core.density.DensityMatrix`.

        Raises:
            SimulationError: if the density matrix would exceed ~4M entries
                — at that point the LPDO *is* the representation.
        """
        if self.dim * self.dim > _DENSE_CAP:
            raise SimulationError(
                f"register dimension {self.dim} too large to densify"
            )
        from .density import DensityMatrix  # local import avoids a cycle

        # Double-layer contraction with each site's Kraus leg summed on the
        # spot — intermediates scale with ``D_partial^2 chi^2``, never with
        # the (globally redundant) product of Kraus legs.
        cur = np.ones((1, 1, 1, 1), dtype=complex)  # (ket, bra, r, s)
        for t in self._tensors:
            cur = np.einsum(
                "PQcx,cdkr,xeks->PdQers", cur, t, t.conj(), optimize=True
            )
            cur = cur.reshape(
                cur.shape[0] * cur.shape[1],
                cur.shape[2] * cur.shape[3],
                cur.shape[4],
                cur.shape[5],
            )
        return DensityMatrix(cur[:, :, 0, 0], self.dims)

    def probabilities(self) -> np.ndarray:
        """Dense basis-outcome probability vector (small registers only)."""
        probs = self.to_density_matrix().probabilities()
        return probs / probs.sum()

    def __repr__(self) -> str:
        return (
            f"LPDOState(dims={self.dims}, max_bond={self.max_bond}, "
            f"max_kraus={self.max_kraus}, bonds={self.bond_dimensions()}, "
            f"kraus={self.kraus_dimensions()}, "
            f"truncation_error={self.truncation_error:.3e}, "
            f"purification_error={self.purification_error:.3e})"
        )
