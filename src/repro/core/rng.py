"""Shared random-number-generator plumbing for reproducible noisy runs.

Historically every sampler in the toolkit fell back to a *fresh unseeded*
``np.random.default_rng()`` when no generator was passed, so an end-to-end
noisy study mixed many unrelated streams and could never be replayed.  All
call sites now route through :func:`ensure_rng`, which resolves ``None`` to
one process-wide generator: seed it once with :func:`set_global_seed` and
every downstream sampler — trajectory jumps, terminal measurement, shot
noise, tomography — draws from the same reproducible stream.

``ensure_rng`` also accepts a plain integer seed anywhere a generator is
accepted, so APIs can expose a single ``rng`` argument instead of parallel
``seed``/``rng`` parameters.
"""

from __future__ import annotations

import numpy as np

from .exceptions import SimulationError

__all__ = [
    "RngLike",
    "ensure_rng",
    "global_rng",
    "set_global_seed",
    "sanitize_probabilities",
    "spawn_seeds",
    "derive_seed",
]

#: Anything :func:`ensure_rng` resolves: a generator (used as-is), an
#: integer seed (wraps a fresh seeded generator), or ``None`` (the shared
#: process-wide generator).  The toolkit-wide type of ``rng`` arguments.
RngLike = np.random.Generator | int | None

_GLOBAL_RNG: np.random.Generator | None = None


def set_global_seed(seed: int | None) -> np.random.Generator:
    """(Re)seed the process-wide fallback generator and return it.

    Call once at program start to make every unseeded sampler in the
    toolkit reproducible end to end.
    """
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)
    return _GLOBAL_RNG


def global_rng() -> np.random.Generator:
    """The process-wide fallback generator (created on first use)."""
    global _GLOBAL_RNG
    if _GLOBAL_RNG is None:
        # The one sanctioned entropy-seeded generator: the process-wide
        # fallback for exploratory use; reproducible paths seed it via
        # set_global_seed() or bypass it entirely with ensure_rng(seed).
        _GLOBAL_RNG = np.random.default_rng()  # repro: ignore[seed-discipline]
    return _GLOBAL_RNG


def sanitize_probabilities(probs: np.ndarray) -> np.ndarray:
    """Clip float-noise negatives at zero and normalise to a unit sum.

    Every sampler that feeds a probability vector into
    ``rng.multinomial`` / ``rng.choice`` routes through here: simulated
    distributions carry tiny negative entries from floating-point
    rounding (density-matrix diagonals, trajectory averages under
    non-trace-preserving rounding), and NumPy's samplers raise on any
    negative entry rather than tolerating them.

    Args:
        probs: raw (possibly unnormalised, possibly noise-negative)
            probability vector.

    Raises:
        SimulationError: if the clipped vector has no probability mass left.
    """
    probs = np.clip(np.real(np.asarray(probs)).astype(float), 0.0, None)
    total = probs.sum()
    if not total > 0.0:
        raise SimulationError("probability vector has no positive mass")
    return probs / total


def spawn_seeds(seed: int | None, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from one root seed.

    Uses PCG64's :class:`numpy.random.SeedSequence` spawning, so the child
    streams are statistically independent of each other *and* of a
    generator seeded with the root itself.  Child ``i`` depends only on
    ``(seed, i)`` — never on how many draws any other child consumed — so
    a loop seeded this way produces bit-identical results whether its
    iterations run serially, in any order, or in parallel worker
    processes.  This is the seed-derivation rule used everywhere the
    toolkit fans one seed out over iterations: campaign points, NDAR
    rounds, shot-budget sweeps, trajectory chunks.

    Args:
        seed: root seed (``None`` spawns from OS entropy — reproducible
            only within the returned list's own consistency).
        n: number of child seeds.

    Returns:
        ``n`` non-negative python ints, each usable wherever an ``rng``
        seed is accepted.
    """
    if n < 0:
        raise SimulationError("cannot spawn a negative number of seeds")
    root = np.random.SeedSequence(seed)
    return [
        int(child.generate_state(2, np.uint64)[0])
        for child in root.spawn(n)
    ]


def derive_seed(rng: RngLike) -> int:
    """One integer seed from an ``rng`` argument, suitable for spawning.

    An integer passes through unchanged (so ``spawn_seeds(derive_seed(s),
    n)`` is deterministic in ``s``); a generator contributes one draw from
    its stream; ``None`` draws from the shared global generator.
    """
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    gen = ensure_rng(rng)
    return int(gen.integers(0, 2**63))


def ensure_rng(rng: RngLike) -> np.random.Generator:
    """Resolve an ``rng`` argument to a concrete generator.

    Args:
        rng: a generator (returned as-is), an integer seed (wraps a fresh
            seeded generator), or ``None`` (the shared global generator).
    """
    if rng is None:
        return global_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    return rng
