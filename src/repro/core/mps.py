"""Matrix-product-state simulation of large mixed-dimension qudit registers.

Every other backend in :mod:`repro.core` stores the full ``D = prod(dims)``
state, which caps paper-scale studies near 7-9 qutrits.  An MPS stores one
rank-3 tensor per site — ``(chi_left, d_site, chi_right)`` — so memory and
time scale with the *entanglement* (bond dimension ``chi``) instead of the
register size, opening 15-20+ qutrit circuits whose dense statevector could
never be allocated.

Evolution is TEBD-style local gate contraction with SVD truncation:

* **single-site gates** contract into one tensor — never any SVD;
* **adjacent two-site diagonal/permutation gates** (controlled-phase, CSUM,
  the NDAR relabellings — classified by :mod:`repro.core.structure`) are
  applied through a cached *operator-Schmidt* factorisation ``U = sum_k
  S_k (x) T_k``: the bond expands exactly by the operator rank with **no
  state SVD and zero truncation error** as long as the expanded bond stays
  within the cap (a lazy zero-loss compression reels the bond back in when
  it exceeds the exact rank bound);
* **adjacent dense two-site gates** (and structured gates whose expansion
  would blow the cap) merge the pair into a theta tensor — with the
  diagonal/permutation theta update still an elementwise multiply/gather,
  no gate reshape — and split by truncated SVD, accumulating the discarded
  Born weight in :attr:`MPSState.truncation_error`;
* **non-adjacent two-qudit gates** route via adjacent-site swap insertion
  (a theta transpose + SVD per hop, handling unequal neighbour dimensions
  transparently) and swap back afterwards;
* **channels** are unravelled stochastically per trajectory: Born weights
  come from the local environment (the orthogonality-centre invariant makes
  them exact), with a constant-weight fast path for channels whose Kraus
  operators all satisfy ``K†K ∝ I`` (depolarising / Weyl channels).

The state keeps a canonical-form interval ``[lo, hi]`` — sites left of
``lo`` are left-orthogonal, sites right of ``hi`` right-orthogonal — so
truncations are locally optimal and norms/expectations only ever contract
the non-orthogonal segment.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from . import budget as _budget
from .circuit import Instruction, QuditCircuit
from .dims import validate_dims
from .exceptions import DimensionError, SimulationError
from .rng import ensure_rng
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .structure import DIAGONAL, PERMUTATION, GateStructure, classify_gate
from .tensor_utils import qr_step_left, qr_step_right, truncated_svd

__all__ = ["MPSState", "operator_schmidt_factors"]

#: Refuse to densify (``to_statevector`` / ``probabilities``) above this.
_DENSE_CAP = 1 << 22

#: Memoised classifications of caller-supplied observables, keyed by the
#: operator's bytes — repeated ``expectation`` calls with the same handful
#: of fixed operators (QAOA edge projectors, reservoir moments) reuse one
#: :class:`GateStructure` and its cached operator-Schmidt factorisation
#: instead of re-classifying / re-decomposing per call.
_OBSERVABLE_CACHE: dict = {}
_OBSERVABLE_CACHE_SIZE = 256


def _classify_observable(operator: np.ndarray) -> GateStructure:
    key = (operator.shape, operator.dtype.str, operator.tobytes())
    cached = _OBSERVABLE_CACHE.get(key)
    if cached is None:
        if len(_OBSERVABLE_CACHE) >= _OBSERVABLE_CACHE_SIZE:
            _OBSERVABLE_CACHE.clear()
        cached = classify_gate(operator)
        _OBSERVABLE_CACHE[key] = cached
    return cached


def operator_schmidt_factors(
    matrix: np.ndarray, d_left: int, d_right: int, tol: float = 1e-14
) -> tuple[np.ndarray, np.ndarray]:
    """Operator-Schmidt decomposition ``U = sum_k S_k (x) T_k`` of a 2-site gate.

    The SVD here is gate-sized (``d^2 x d^2``), computed once per gate
    structure and cached — it never touches the state.

    Args:
        matrix: operator on the joint ``d_left * d_right`` space, tensor
            order ``(left, right)``.
        d_left: dimension of the left site.
        d_right: dimension of the right site.
        tol: singular values below ``tol * s_max`` are dropped (they are
            numerically zero for structured gates).

    Returns:
        ``(left, right)`` stacks of shape ``(r, d_left, d_left)`` and
        ``(r, d_right, d_right)`` with ``sum_k left[k] (x) right[k]``
        reproducing the operator; ``r`` is the operator Schmidt rank.
    """
    tensor = np.asarray(matrix, dtype=complex).reshape(
        d_left, d_right, d_left, d_right
    )
    mat = tensor.transpose(0, 2, 1, 3).reshape(d_left * d_left, d_right * d_right)
    u, s, vh = np.linalg.svd(mat, full_matrices=False)
    keep = s > tol * s[0]
    u, s, vh = u[:, keep], s[keep], vh[keep]
    root = np.sqrt(s)
    left = (u * root).T.reshape(-1, d_left, d_left)
    right = (root[:, None] * vh).reshape(-1, d_right, d_right)
    return left, right


def _gram_diag(op: np.ndarray, structure: GateStructure) -> np.ndarray | None:
    """Diagonal of ``K†K`` if it is exactly diagonal, else ``None``.

    Structured operators never need the matrix product: a diagonal ``K``
    has gram ``|diag|^2`` and a monomial ``K`` has ``gram[source[r]] =
    |values[r]|^2``.
    """
    if structure.kind == DIAGONAL:
        return np.abs(structure.diag) ** 2
    if structure.kind == PERMUTATION:
        out = np.empty(structure.dim)
        values = structure.values
        out[structure.source] = 1.0 if values is None else np.abs(values) ** 2
        return out
    gram = op.conj().T @ op
    off = gram.copy()
    np.fill_diagonal(off, 0)
    if off.any():
        return None
    return np.real(np.diagonal(gram)).copy()


def _sorted_gate(
    matrix: np.ndarray,
    structure: GateStructure | None,
    targets: Sequence[int],
    dims: Sequence[int],
) -> tuple[GateStructure, tuple[int, ...]]:
    """Reorder a gate's tensor axes so its targets are ascending.

    Returns the (possibly re-classified) structure of the axis-permuted
    matrix and the sorted target tuple.  The permuted structure is cached
    on the original structure's plan dict, so Trotter circuits permute and
    re-classify each distinct gate once.
    """
    targets = tuple(int(t) for t in targets)
    if structure is None:
        structure = classify_gate(np.asarray(matrix, dtype=complex))
    order = tuple(sorted(range(len(targets)), key=targets.__getitem__))
    if order == tuple(range(len(targets))):
        return structure, targets
    gate_dims = [dims[t] for t in targets]
    # The dims belong in the key: one GateStructure can be shared across
    # registers (observable memo, reused instructions), and the same byte
    # pattern permutes differently on e.g. (2, 3) vs (3, 2) wires.
    key = ("axis_order", order, tuple(gate_dims))
    permuted = structure.plans.get(key)
    if permuted is None:
        k = len(targets)
        tensor = np.asarray(matrix, dtype=complex).reshape(gate_dims + gate_dims)
        axes = list(order) + [a + k for a in order]
        new_dim = structure.dim
        permuted = classify_gate(
            np.ascontiguousarray(np.transpose(tensor, axes)).reshape(
                new_dim, new_dim
            )
        )
        structure.plans[key] = permuted
    return permuted, tuple(sorted(targets))


class MPSState:
    """A pure state of a qudit register in matrix-product form.

    Args:
        tensors: per-site tensors of shape ``(chi_l, d_i, chi_r)`` with
            matching bonds; the first/last bonds must be 1.
        dims: per-site dimensions (validated against the tensors).
        max_bond: bond-dimension cap ``chi``; ``None`` evolves exactly
            (bond grows as entanglement demands — feasible only for small
            or weakly-entangled registers).
        svd_tol: relative singular-value cutoff; values below
            ``svd_tol * s_max`` are always discarded (they carry only
            numerical noise).

    Example:
        >>> qc = QuditCircuit([3, 3]); qc.fourier(0); qc.csum(0, 1)
        >>> mps = MPSState.zero([3, 3]).evolve(qc)
        >>> round(mps.probability_of([1, 1]), 3)
        0.333
    """

    def __init__(
        self,
        tensors: Sequence[np.ndarray],
        dims: Sequence[int],
        *,
        max_bond: int | None = None,
        svd_tol: float = 1e-12,
    ) -> None:
        dims = validate_dims(dims)
        if len(tensors) != len(dims):
            raise DimensionError(
                f"{len(tensors)} tensors for a {len(dims)}-site register"
            )
        tensors = [np.asarray(t, dtype=complex) for t in tensors]
        bond = 1
        for i, (t, d) in enumerate(zip(tensors, dims)):
            if t.ndim != 3 or t.shape[1] != d or t.shape[0] != bond:
                raise DimensionError(
                    f"site {i} tensor has shape {t.shape}; expected "
                    f"({bond}, {d}, *)"
                )
            bond = t.shape[2]
        if bond != 1:
            raise DimensionError(f"final bond dimension {bond} != 1")
        if max_bond is not None and max_bond < 1:
            raise SimulationError("max_bond must be >= 1")
        self._tensors = tensors
        self._dims = list(dims)
        self.max_bond = max_bond
        self.svd_tol = float(svd_tol)
        #: Cumulative discarded Born weight over all truncating SVDs.
        self.truncation_error = 0.0
        # Canonical interval: sites < lo are left-orthogonal, > hi right-.
        self._lo = 0
        self._hi = 0 if self._is_product() else len(dims) - 1

    def _is_product(self) -> bool:
        return all(t.shape[0] == 1 and t.shape[2] == 1 for t in self._tensors)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(
        cls,
        dims: Sequence[int],
        *,
        max_bond: int | None = None,
        svd_tol: float = 1e-12,
    ) -> "MPSState":
        """The all-|0> product state."""
        return cls.basis(dims, [0] * len(validate_dims(dims)),
                         max_bond=max_bond, svd_tol=svd_tol)

    @classmethod
    def basis(
        cls,
        dims: Sequence[int],
        digits: Sequence[int],
        *,
        max_bond: int | None = None,
        svd_tol: float = 1e-12,
    ) -> "MPSState":
        """Computational basis state ``|digits>`` (bond dimension 1)."""
        dims = validate_dims(dims)
        if len(digits) != len(dims):
            raise DimensionError(
                f"{len(digits)} digits for a {len(dims)}-site register"
            )
        tensors = []
        for d, k in zip(dims, digits):
            if not 0 <= int(k) < d:
                raise DimensionError(f"digit {k} out of range for dim {d}")
            t = np.zeros((1, d, 1), dtype=complex)
            t[0, int(k), 0] = 1.0
            tensors.append(t)
        return cls(tensors, dims, max_bond=max_bond, svd_tol=svd_tol)

    @classmethod
    def from_statevector(
        cls,
        state,
        *,
        max_bond: int | None = None,
        svd_tol: float = 1e-12,
    ) -> "MPSState":
        """Exact (or ``max_bond``-truncated) MPS of a dense state.

        Args:
            state: a :class:`~repro.core.statevector.Statevector` or a flat
                amplitude array paired with register dims via ``.dims``.
        """
        dims = validate_dims(state.dims)
        out = cls.zero(dims, max_bond=max_bond, svd_tol=svd_tol)
        theta = np.asarray(state.vector, dtype=complex).reshape(
            (1,) + tuple(dims) + (1,)
        )
        if len(dims) == 1:
            out._tensors = [theta]
            out._lo = out._hi = 0
        else:
            out._lo, out._hi = 0, len(dims) - 1
            out._split_run(0, theta)
        return out

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def dims(self) -> tuple[int, ...]:
        """Per-site dimensions."""
        return tuple(self._dims)

    @property
    def num_sites(self) -> int:
        """Number of register sites."""
        return len(self._dims)

    @property
    def dim(self) -> int:
        """Total Hilbert-space dimension (python int; may be astronomically large)."""
        out = 1
        for d in self._dims:
            out *= d
        return out

    def bond_dimensions(self) -> tuple[int, ...]:
        """Current bond dimension at each of the ``n - 1`` internal bonds."""
        return tuple(t.shape[2] for t in self._tensors[:-1])

    def site_tensor(self, i: int) -> np.ndarray:
        """The (read-only view of the) tensor at site ``i``."""
        return self._tensors[i]

    def copy(self) -> "MPSState":
        """Cheap copy (tensors are replaced, never mutated, so sharing is safe)."""
        out = MPSState.__new__(MPSState)
        out._tensors = list(self._tensors)
        out._dims = list(self._dims)
        out.max_bond = self.max_bond
        out.svd_tol = self.svd_tol
        out.truncation_error = self.truncation_error
        out._lo, out._hi = self._lo, self._hi
        return out

    # ------------------------------------------------------------------
    # canonical-form maintenance
    # ------------------------------------------------------------------
    def _qr_step_right(self, i: int) -> None:
        """Left-orthogonalise site ``i``, absorbing the remainder rightward."""
        qr_step_right(self._tensors, i)
        self._lo = i + 1
        self._hi = max(self._hi, i + 1)

    def _qr_step_left(self, i: int) -> None:
        """Right-orthogonalise site ``i``, absorbing the remainder leftward."""
        qr_step_left(self._tensors, i)
        self._hi = i - 1
        self._lo = min(self._lo, i - 1)

    def _canonicalize(self, lo: int, hi: int) -> None:
        """Shrink the non-orthogonal interval into ``[lo, hi]``."""
        while self._lo < lo:
            self._qr_step_right(self._lo)
        while self._hi > hi:
            self._qr_step_left(self._hi)

    def _norm_sq(self) -> float:
        """Squared norm via contraction of the non-orthogonal segment only."""
        env = None
        for i in range(self._lo, min(self._hi, self.num_sites - 1) + 1):
            t = self._tensors[i]
            if env is None:
                env = np.einsum("ldr,lds->rs", t.conj(), t)
            else:
                env = np.einsum("xy,xdr,yds->rs", env, t.conj(), t, optimize=True)
        return float(np.real(np.trace(env)))

    def norm(self) -> float:
        """2-norm of the encoded state."""
        return float(np.sqrt(max(self._norm_sq(), 0.0)))

    def _renormalize(self) -> None:
        norm = self.norm()
        if norm < 1e-300:
            raise SimulationError("cannot normalise a zero MPS")
        self._tensors[self._lo] = self._tensors[self._lo] / norm

    # ------------------------------------------------------------------
    # SVD splitting
    # ------------------------------------------------------------------
    def _split_once(
        self, mat: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Truncated SVD split of one flattened theta matrix.

        Keeps at most ``max_bond`` singular values above the relative
        tolerance, accumulates the discarded weight fraction into
        :attr:`truncation_error`, and rescales the kept spectrum so the
        state norm is preserved.
        """
        if _tracing.enabled:
            with _tracing.span("truncated_svd", backend="mps") as ev:
                left, right, discarded = truncated_svd(
                    mat, max_keep=self.max_bond, rel_tol=self.svd_tol
                )
                ev["args"]["chi"] = int(left.shape[1])
        else:
            left, right, discarded = truncated_svd(
                mat, max_keep=self.max_bond, rel_tol=self.svd_tol
            )
        if discarded > 1e-16:
            self.truncation_error += discarded
        _budget.record_truncation(float(discarded), int(left.shape[1]))
        if _metrics.enabled:
            _metrics.set_gauge("bond_dim", left.shape[1], backend="mps")
            _metrics.set_gauge(
                "truncation_error", self.truncation_error, backend="mps"
            )
        return left, right

    def _split_run(self, start: int, theta: np.ndarray) -> None:
        """Split a merged ``(l, d_1..d_k, r)`` theta back into site tensors.

        Leaves the orthogonality centre on the last site of the run.
        """
        k = theta.ndim - 2
        for m in range(k - 1):
            l, d = theta.shape[0], theta.shape[1]
            rest = theta.shape[2:]
            left, right = self._split_once(theta.reshape(l * d, -1))
            self._tensors[start + m] = left.reshape(l, d, -1)
            theta = right.reshape((right.shape[0],) + rest)
        self._tensors[start + k - 1] = theta
        self._lo = self._hi = start + k - 1

    def _exact_cap(self, i: int) -> int:
        """Maximum possible Schmidt rank across the bond right of site ``i``."""
        left = 1
        for d in self._dims[: i + 1]:
            left *= d
        right = 1
        for d in self._dims[i + 1:]:
            right *= d
        return min(left, right)

    def _truncate_bond(self, i: int) -> None:
        """Re-compress the bond between sites ``i`` and ``i + 1``."""
        self._canonicalize(i, i + 1)
        theta = np.einsum(
            "ldr,res->ldes", self._tensors[i], self._tensors[i + 1]
        )
        self._split_run(i, theta)

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------
    def _apply_site(
        self,
        site: int,
        matrix: np.ndarray,
        structure: GateStructure,
        unitary: bool = True,
    ) -> None:
        """Contract a one-site operator into the site tensor (never any SVD)."""
        t = self._tensors[site]
        if structure.kind == DIAGONAL:
            t = t * structure.diag[None, :, None]
        elif structure.kind == PERMUTATION:
            t = t.take(structure.source, axis=1)
            if structure.values is not None:
                t = t * structure.values[None, :, None]
        else:
            t = np.einsum("ab,lbr->lar", matrix, t)
        self._tensors[site] = t
        if not unitary:
            self._lo = min(self._lo, site)
            self._hi = max(self._hi, site)

    def _apply_theta(
        self, theta: np.ndarray, matrix: np.ndarray, structure: GateStructure
    ) -> np.ndarray:
        """Apply an operator to a merged theta's joint physical axis."""
        shape = theta.shape
        flat = theta.reshape(shape[0], structure.dim, shape[-1])
        if structure.kind == DIAGONAL:
            flat = flat * structure.diag[None, :, None]
        elif structure.kind == PERMUTATION:
            flat = flat.take(structure.source, axis=1)
            if structure.values is not None:
                flat = flat * structure.values[None, :, None]
        else:
            flat = np.einsum("ab,lbr->lar", matrix, flat)
        return flat.reshape(shape)

    def _merge_theta(self, start: int, k: int) -> np.ndarray:
        """Merge sites ``start .. start + k - 1`` into one theta tensor."""
        theta = self._tensors[start]
        for m in range(1, k):
            theta = np.tensordot(theta, self._tensors[start + m], axes=(-1, 0))
        return theta

    def _expand_pair(
        self, start: int, left: np.ndarray, right: np.ndarray
    ) -> None:
        """Bond-expansion application of ``sum_k left[k] (x) right[k]``.

        No state SVD: the shared bond is multiplied by the operator
        Schmidt rank.  Both sites lose orthogonality, which widens the
        canonical interval.
        """
        a, b = self._tensors[start], self._tensors[start + 1]
        r_terms = left.shape[0]
        la, da, ra = a.shape
        lb, db, rb = b.shape
        new_a = np.einsum("kab,lbr->lark", left, a).reshape(
            la, da, ra * r_terms
        )
        new_b = np.einsum("kcb,lbr->lkcr", right, b).reshape(
            lb * r_terms, db, rb
        )
        self._tensors[start] = new_a
        self._tensors[start + 1] = new_b
        self._lo = min(self._lo, start)
        self._hi = max(self._hi, start + 1)

    def _apply_run(
        self, start: int, k: int, matrix: np.ndarray, structure: GateStructure
    ) -> None:
        """Apply an operator to ``k`` contiguous sites starting at ``start``."""
        if k == 1:
            self._apply_site(start, matrix, structure)
            return
        if k == 2 and structure.kind in (DIAGONAL, PERMUTATION):
            d_left, d_right = self._dims[start], self._dims[start + 1]
            key = ("op_schmidt", d_left, d_right)
            factors = structure.plans.get(key)
            if factors is None:
                factors = operator_schmidt_factors(
                    structure.matrix, d_left, d_right
                )
                structure.plans[key] = factors
            left, right = factors
            bond = self._tensors[start].shape[2]
            new_bond = bond * left.shape[0]
            if self.max_bond is None or new_bond <= self.max_bond:
                self._expand_pair(start, left, right)
                if new_bond > min(
                    self.max_bond or new_bond, self._exact_cap(start)
                ):
                    self._truncate_bond(start)
                return
        self._canonicalize(start, start + k - 1)
        theta = self._apply_theta(self._merge_theta(start, k), matrix, structure)
        self._split_run(start, theta)

    def _swap_adjacent(self, i: int) -> None:
        """Exchange sites ``i`` and ``i + 1`` (theta transpose + SVD split)."""
        self._canonicalize(i, i + 1)
        theta = np.einsum(
            "ldr,res->ldes", self._tensors[i], self._tensors[i + 1]
        )
        theta = theta.transpose(0, 2, 1, 3)
        self._dims[i], self._dims[i + 1] = self._dims[i + 1], self._dims[i]
        self._split_run(i, theta)

    def _route_and_apply(self, targets, apply_fn) -> None:
        """Swap distant pair targets adjacent, run ``apply_fn``, swap back.

        ``targets`` must be ascending; ``apply_fn(start)`` is invoked with
        the pair sitting at ``(start, start + 1)``.
        """
        u, v = targets
        for j in range(v - 1, u, -1):
            self._swap_adjacent(j)
        apply_fn(u)
        for j in range(u + 1, v):
            self._swap_adjacent(j)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: int | Sequence[int],
        structure: GateStructure | None = None,
    ) -> None:
        """Apply a unitary to the target wires (in place).

        Targets must be a single wire, a contiguous run of wires (any
        order), or two arbitrary wires (routed via swap insertion).

        Args:
            matrix: operator in the tensor order of ``targets``.
            structure: optional precomputed gate structure (the per-
                instruction cache); classified on the fly when omitted.
        """
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        matrix = np.asarray(matrix, dtype=complex)
        structure, targets = _sorted_gate(matrix, structure, targets, self._dims)
        for t in targets:
            if not 0 <= t < self.num_sites:
                raise SimulationError(f"wire {t} out of range")
        if _metrics.enabled or _tracing.enabled:
            _metrics.inc("gate_applies", backend="mps", kind=structure.kind)
            with _tracing.span("gate_apply", backend="mps", kind=structure.kind):
                self._dispatch_gate(targets, structure)
            return
        self._dispatch_gate(targets, structure)

    def _dispatch_gate(self, targets: tuple[int, ...], structure) -> None:
        """Route a validated, sorted gate to the contiguous-run kernel."""
        k = len(targets)
        first = targets[0]
        if targets == tuple(range(first, first + k)):
            self._apply_run(first, k, structure.matrix, structure)
            return
        if k != 2:
            raise SimulationError(
                f"MPS gates must target one wire, a contiguous run, or two "
                f"wires; got {targets}"
            )
        self._route_and_apply(
            targets,
            lambda start: self._apply_run(
                start, 2, structure.matrix, structure
            ),
        )

    # ------------------------------------------------------------------
    # channels / reset (stochastic unravelling, one trajectory)
    # ------------------------------------------------------------------
    def _kraus_weights_local(
        self, start: int, k: int, ops
    ) -> tuple[list, np.ndarray]:
        """Candidate branches and Born weights on a contiguous run.

        With the canonical interval shrunk onto the run, the environment
        is orthogonal and ``||K theta||_F^2`` *is* the Born weight.
        """
        self._canonicalize(start, start + k - 1)
        theta = self._merge_theta(start, k)
        candidates = []
        weights = np.empty(len(ops))
        for idx, (op, structure) in enumerate(ops):
            cand = self._apply_theta(theta, op, structure)
            candidates.append(cand)
            weights[idx] = float(np.real(np.vdot(cand, cand)))
        return candidates, weights

    def _apply_channel(self, instruction: Instruction, rng) -> None:
        """Stochastically apply one Kraus branch with its Born probability."""
        targets = instruction.qudits
        structures = instruction.kraus_structures()
        ops = []
        for op, st in zip(instruction.kraus, structures):
            st, sorted_targets = _sorted_gate(op, st, targets, self._dims)
            ops.append((st.matrix, st))
        targets = tuple(sorted(int(t) for t in targets))
        k = len(targets)
        contiguous = targets == tuple(range(targets[0], targets[0] + k))
        if not contiguous and k != 2:
            raise SimulationError(
                f"MPS channels must target one wire, a contiguous run, or "
                f"two wires; got {targets}"
            )
        grams = [_gram_diag(op, st) for op, st in ops]
        constant = all(
            g is not None and np.ptp(g) <= 1e-12 * (np.abs(g).max() + 1e-30)
            for g in grams
        )
        if constant:
            # K†K ∝ I for every branch: weights are state-independent.
            weights = np.array([g[0] for g in grams])
            choice = int(rng.choice(len(ops), p=weights / weights.sum()))
            op, st = ops[choice]
            if contiguous:
                if k == 1:
                    self._apply_site(targets[0], op, st, unitary=False)
                else:
                    self._apply_run(targets[0], k, op, st)
                    self._lo = min(self._lo, targets[0])
            else:
                self._route_and_apply(
                    targets, lambda start: self._apply_run(start, 2, op, st)
                )
            self._renormalize()
            return

        def _choose(start: int, run: int) -> None:
            candidates, weights = self._kraus_weights_local(
                start, run, ops
            )
            total = weights.sum()
            if total <= 0:
                raise SimulationError(
                    "all Kraus branches annihilated the state"
                )
            choice = int(rng.choice(len(ops), p=weights / total))
            theta = candidates[choice] / np.sqrt(weights[choice])
            if run == 1:
                self._tensors[start] = theta
                self._lo = min(self._lo, start)
                self._hi = max(self._hi, start)
            else:
                self._split_run(start, theta)

        if contiguous:
            _choose(targets[0], k)
        else:
            self._route_and_apply(targets, lambda start: _choose(start, 2))

    def _reset_site(self, site: int, rng) -> None:
        """Projectively measure one wire and re-prepare it in |0>."""
        self._canonicalize(site, site)
        t = self._tensors[site]
        probs = np.real(np.einsum("lsr,lsr->s", t.conj(), t))
        total = probs.sum()
        if total <= 0:
            raise SimulationError("cannot measure a zero-norm state")
        outcome = int(rng.choice(len(probs), p=probs / total))
        collapsed = np.zeros_like(t)
        collapsed[:, 0, :] = t[:, outcome, :] / np.sqrt(probs[outcome] / total)
        self._tensors[site] = collapsed

    # ------------------------------------------------------------------
    # circuit evolution
    # ------------------------------------------------------------------
    def apply_instruction(self, instruction: Instruction, rng=None) -> None:
        """Apply one circuit instruction in place.

        Args:
            instruction: unitary / channel / measure / reset instruction.
            rng: resolved generator for stochastic instructions (required
                for channels and resets).
        """
        if instruction.kind == "unitary":
            self.apply_unitary(
                instruction.matrix,
                instruction.qudits,
                structure=instruction.structure(),
            )
        elif instruction.kind == "channel":
            self._apply_channel(instruction, ensure_rng(rng))
        elif instruction.kind == "measure":
            pass  # terminal measurement is implicit in sampling
        elif instruction.kind == "reset":
            self._reset_site(instruction.qudits[0], ensure_rng(rng))
        else:  # pragma: no cover - kinds validated at circuit build time
            raise SimulationError(f"unknown kind {instruction.kind}")

    def evolve(
        self,
        circuit: QuditCircuit,
        rng: np.random.Generator | int | None = None,
    ) -> "MPSState":
        """Run a circuit and return the evolved state (self is unchanged).

        Channel instructions are unravelled stochastically — this is *one*
        trajectory; average several evolutions (or use the ``mps`` backend
        with ``n_trajectories``) to estimate noisy expectations.

        Args:
            circuit: circuit over the same register dims.
            rng: generator / integer seed for stochastic instructions,
                resolved once for the whole run (``None`` uses the shared
                global generator from :mod:`repro.core.rng`).
        """
        if circuit.dims != self.dims:
            raise DimensionError(
                f"circuit dims {circuit.dims} != state dims {self.dims}"
            )
        out = self.copy()
        gen = None
        if any(ins.kind in ("channel", "reset") for ins in circuit):
            gen = ensure_rng(rng)
        for instruction in circuit:
            out.apply_instruction(instruction, rng=gen)
        return out

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> complex:
        """``<psi|O|psi>`` of a local operator (normalised by ``<psi|psi>``).

        Supports one wire, a contiguous run of wires, and two arbitrary
        wires (contracted through the intervening transfer matrices via the
        operator-Schmidt decomposition — no swaps, no truncation).
        """
        if targets is None:
            targets = tuple(range(self.num_sites))
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        operator = np.asarray(operator, dtype=complex)
        structure, targets = _sorted_gate(
            operator, _classify_observable(operator), targets, self._dims
        )
        operator = structure.matrix
        k = len(targets)
        first = targets[0]
        if targets == tuple(range(first, first + k)):
            expected = 1
            for t in targets:
                expected *= self._dims[t]
            if operator.shape != (expected, expected):
                raise DimensionError(
                    f"operator shape {operator.shape} does not span wires "
                    f"{targets} (dimension {expected})"
                )
            self._canonicalize(first, first + k - 1)
            theta = self._merge_theta(first, k)
            transformed = self._apply_theta(theta, operator, structure)
            value = complex(np.vdot(theta, transformed))
            denom = float(np.real(np.vdot(theta, theta)))
            return value / denom
        if k != 2:
            raise SimulationError(
                f"MPS expectation targets must be one wire, a contiguous "
                f"run, or two wires; got {targets}"
            )
        u, v = targets
        key = ("op_schmidt", self._dims[u], self._dims[v])
        factors = structure.plans.get(key)
        if factors is None:
            factors = operator_schmidt_factors(
                operator, self._dims[u], self._dims[v]
            )
            structure.plans[key] = factors
        left, right = factors
        self._canonicalize(u, v)
        a_u = self._tensors[u]
        # One environment per operator-Schmidt term, carried through the
        # transfer matrices of the intervening sites.
        envs = np.einsum("xdr,kdc,xcs->krs", a_u.conj(), left, a_u)
        norm_env = np.einsum("xdr,xds->rs", a_u.conj(), a_u)
        for m in range(u + 1, v):
            t = self._tensors[m]
            envs = np.einsum("kxy,xdr,yds->krs", envs, t.conj(), t, optimize=True)
            norm_env = np.einsum(
                "xy,xdr,yds->rs", norm_env, t.conj(), t, optimize=True
            )
        a_v = self._tensors[v]
        value = complex(
            np.einsum(
                "kxy,xdr,kdc,ycr->", envs, a_v.conj(), right, a_v, optimize=True
            )
        )
        denom = float(
            np.real(np.einsum("xy,xdr,ydr->", norm_env, a_v.conj(), a_v))
        )
        return value / denom

    def amplitude(self, digits: Sequence[int]) -> complex:
        """Amplitude ``<digits|psi>`` in ``O(n chi^2)``."""
        if len(digits) != self.num_sites:
            raise DimensionError(
                f"{len(digits)} digits for a {self.num_sites}-site register"
            )
        vec = self._tensors[0][:, int(digits[0]), :]
        for i in range(1, self.num_sites):
            vec = vec @ self._tensors[i][:, int(digits[i]), :]
        return complex(vec[0, 0])

    def probability_of(self, digits: Sequence[int]) -> float:
        """Probability of one basis outcome (normalised)."""
        return float(np.abs(self.amplitude(digits)) ** 2 / self._norm_sq())

    def sample(
        self,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Draw computational-basis outcomes by sequential site sampling.

        Each shot walks the chain once (``O(n d chi^2)``) — no dense
        probability vector is ever built, so sampling works at register
        sizes where ``prod(dims)`` outcomes could not even be enumerated.
        """
        if shots < 1:
            raise SimulationError("need at least one shot")
        rng = ensure_rng(rng)
        self._canonicalize(0, 0)
        counts: dict[tuple[int, ...], int] = {}
        for _ in range(shots):
            prefix = np.ones((1,), dtype=complex)
            digits = []
            for i in range(self.num_sites):
                amps = np.einsum("a,adr->dr", prefix, self._tensors[i])
                probs = np.real(np.einsum("dr,dr->d", amps.conj(), amps))
                total = probs.sum()
                if total <= 0:
                    raise SimulationError("cannot sample a zero-norm state")
                outcome = int(rng.choice(len(probs), p=probs / total))
                digits.append(outcome)
                prefix = amps[outcome] / np.sqrt(probs[outcome])
            key = tuple(digits)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # densification (small registers only)
    # ------------------------------------------------------------------
    def to_statevector(self):
        """Contract into a dense :class:`~repro.core.statevector.Statevector`.

        Raises:
            SimulationError: if the register dimension exceeds ~4M
                amplitudes — at that point the MPS *is* the representation.
        """
        if self.dim > _DENSE_CAP:
            raise SimulationError(
                f"register dimension {self.dim} too large to densify"
            )
        from .statevector import Statevector  # local import avoids a cycle

        vec = self._tensors[0].reshape(self._dims[0], -1)
        for i in range(1, self.num_sites):
            t = self._tensors[i]
            vec = (vec @ t.reshape(t.shape[0], -1)).reshape(
                -1, t.shape[2]
            )
        return Statevector(vec.reshape(-1), self.dims)

    def probabilities(self) -> np.ndarray:
        """Dense Born-rule probability vector (small registers only)."""
        probs = self.to_statevector().probabilities()
        return probs / probs.sum()

    def fidelity(self, other: "MPSState") -> float:
        """``|<self|other>|^2 / (<self|self><other|other>)`` via bond contraction."""
        if other.dims != self.dims:
            raise DimensionError("fidelity requires matching register dims")
        env = np.ones((1, 1), dtype=complex)
        for a, b in zip(self._tensors, other._tensors):
            env = np.einsum("xy,xdr,yds->rs", env, a.conj(), b, optimize=True)
        overlap = float(np.abs(env[0, 0]) ** 2)
        return overlap / (self._norm_sq() * other._norm_sq())

    def __repr__(self) -> str:
        return (
            f"MPSState(dims={self.dims}, max_bond={self.max_bond}, "
            f"bonds={self.bond_dimensions()}, "
            f"truncation_error={self.truncation_error:.3e})"
        )
