"""Monte-Carlo quantum-trajectory simulation of noisy qudit circuits.

For registers too large for a density matrix (e.g. nine qutrits, D = 19683,
where rho would hold ~4x10^8 complex numbers), noise is unravelled into
stochastic Kraus jumps on a statevector: for each channel instruction one
Kraus operator is selected with its Born probability and the state is
renormalised.  Averaging over trajectories converges to the density-matrix
result; sampling measurement outcomes trajectory-by-trajectory reproduces
the noisy output distribution, which is all the QAOA/NDAR studies need.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from .circuit import QuditCircuit
from .exceptions import SimulationError
from .statevector import Statevector

__all__ = ["TrajectorySimulator"]


class TrajectorySimulator:
    """Stochastic noisy simulator over pure-state trajectories.

    Args:
        circuit: circuit containing unitary and channel instructions.
        seed: RNG seed for reproducibility.
    """

    def __init__(self, circuit: QuditCircuit, seed: int | None = None) -> None:
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)

    def _run_single(self, initial: Statevector) -> Statevector:
        """Evolve one trajectory through the circuit."""
        state = initial
        for instruction in self.circuit:
            if instruction.kind == "unitary":
                state = state.apply(instruction.matrix, instruction.qudits)
            elif instruction.kind == "channel":
                state = self._jump(state, instruction.kraus, instruction.qudits)
            elif instruction.kind == "measure":
                continue
            elif instruction.kind == "reset":
                wire = instruction.qudits[0]
                _, state = state.measure_qudit(wire, rng=self._rng)
                state = self._force_zero(state, wire)
            else:  # pragma: no cover - validated at circuit build time
                raise SimulationError(f"unknown kind {instruction.kind}")
        return state

    def _force_zero(self, state: Statevector, wire: int) -> Statevector:
        """Map whatever basis value the wire holds to |0> (post-measure reset)."""
        d = state.dims[wire]
        # After projective measurement the wire is in a definite basis state;
        # find it from the marginal and apply the cyclic shift sending it to 0.
        marginal = np.abs(state.tensor) ** 2
        axes = tuple(ax for ax in range(len(state.dims)) if ax != wire)
        probs = marginal.sum(axis=axes)
        value = int(np.argmax(probs))
        if value == 0:
            return state
        from .gates import weyl_x

        return state.apply(weyl_x(d, -value), wire)

    def _jump(
        self,
        state: Statevector,
        kraus: Sequence[np.ndarray],
        targets: tuple[int, ...],
    ) -> Statevector:
        """Pick one Kraus branch with Born probability and renormalise."""
        weights = []
        candidates = []
        for op in kraus:
            new = state.apply(op, targets)
            weight = new.norm() ** 2
            weights.append(weight)
            candidates.append(new)
        weights = np.asarray(weights)
        total = weights.sum()
        if total <= 0:
            raise SimulationError("all Kraus branches annihilated the state")
        choice = int(self._rng.choice(len(kraus), p=weights / total))
        return candidates[choice].normalized()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sample(
        self,
        shots: int,
        initial: Statevector | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Draw ``shots`` outcomes, one fresh trajectory per shot."""
        initial = initial or Statevector.zero(self.circuit.dims)
        counts: dict[tuple[int, ...], int] = {}
        for _ in range(shots):
            final = self._run_single(initial)
            digits = self._sample_digits(final)
            counts[digits] = counts.get(digits, 0) + 1
        return counts

    def _sample_digits(self, state: Statevector) -> tuple[int, ...]:
        probs = state.probabilities()
        probs = probs / probs.sum()
        index = int(self._rng.choice(len(probs), p=probs))
        from .dims import index_to_digits

        return index_to_digits(index, state.dims)

    def expectation(
        self,
        observable: Callable[[Statevector], float],
        n_trajectories: int,
        initial: Statevector | None = None,
    ) -> tuple[float, float]:
        """Trajectory-averaged expectation of a state functional.

        Args:
            observable: maps a final pure state to a real number.
            n_trajectories: number of stochastic repetitions.
            initial: starting state (defaults to all-|0>).

        Returns:
            ``(mean, standard_error)`` over trajectories.
        """
        if n_trajectories < 1:
            raise SimulationError("need at least one trajectory")
        initial = initial or Statevector.zero(self.circuit.dims)
        values = np.empty(n_trajectories)
        for i in range(n_trajectories):
            values[i] = observable(self._run_single(initial))
        stderr = (
            float(values.std(ddof=1) / np.sqrt(n_trajectories))
            if n_trajectories > 1
            else 0.0
        )
        return float(values.mean()), stderr

    def average_density(
        self, n_trajectories: int, initial: Statevector | None = None
    ) -> np.ndarray:
        """Trajectory-averaged density matrix (small registers only)."""
        initial = initial or Statevector.zero(self.circuit.dims)
        dim = initial.dim
        if dim > 512:
            raise SimulationError(
                f"register dim {dim} too large to accumulate a density matrix"
            )
        rho = np.zeros((dim, dim), dtype=complex)
        for _ in range(n_trajectories):
            vec = self._run_single(initial).vector
            rho += np.outer(vec, vec.conj())
        return rho / n_trajectories
