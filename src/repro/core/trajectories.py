"""Monte-Carlo quantum-trajectory simulation of noisy qudit circuits.

For registers too large for a density matrix (e.g. nine qutrits, D = 19683,
where rho would hold ~4x10^8 complex numbers), noise is unravelled into
stochastic Kraus jumps on a statevector: for each channel instruction one
Kraus operator is selected with its Born probability and the state is
renormalised.  Averaging over trajectories converges to the density-matrix
result; sampling measurement outcomes trajectory-by-trajectory reproduces
the noisy output distribution, which is all the QAOA/NDAR studies need.

**Batched engine.**  All trajectories evolve *simultaneously* as one tensor
with a trailing batch axis (shape ``dims + (B,)``), which every kernel in
:func:`~repro.core.statevector.apply_matrix` supports natively.  A unitary
touches the whole batch in one structured kernel call; a channel computes
every Kraus candidate for every trajectory, selects one branch per
trajectory by vectorised inverse-CDF sampling of the Born weights, and
renormalises the whole batch at once; resets collapse and re-zero a wire
batch-wide.  This removes the per-trajectory Python interpreter loop that
dominated the seed implementation (see ``benchmarks/bench_core_engine.py``
and ``BENCH_core.json`` for the measured speedup).  Batches are chunked so
the *working set* stays bounded however many trajectories are requested;
``sample``/``expectation``/``average_density`` stream over the chunks,
while ``run_batch``'s returned final-state array necessarily scales with
the request.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from .circuit import Instruction, QuditCircuit
from .dims import index_to_digits, total_dim
from .exceptions import SimulationError
from .rng import derive_seed, ensure_rng, spawn_seeds
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .statevector import Statevector, apply_matrix, broadcast_over_targets

__all__ = ["TrajectorySimulator"]

#: Default cap on ``register_dim * batch`` amplitudes held at once (~64 MB
#: of complex128); larger trajectory requests are processed in chunks.
_MAX_BATCH_AMPLITUDES = 1 << 22


class TrajectorySimulator:
    """Stochastic noisy simulator over batched pure-state trajectories.

    Args:
        circuit: circuit containing unitary and channel instructions.
        seed: integer seed, a ``numpy.random.Generator`` to draw from, or
            ``None`` for the shared global generator (:mod:`repro.core.rng`)
            — pass one generator through a whole study for end-to-end
            reproducibility.
        max_batch: optional cap on trajectories evolved per chunk; defaults
            to whatever keeps the batch under ~64 MB of amplitudes.
    """

    def __init__(
        self,
        circuit: QuditCircuit,
        seed: int | np.random.Generator | None = None,
        max_batch: int | None = None,
    ) -> None:
        self.circuit = circuit
        self._rng = ensure_rng(seed)
        if max_batch is not None and max_batch < 1:
            raise SimulationError("max_batch must be >= 1")
        self._max_batch = max_batch
        # Per-channel-instruction weight plans (lazily built): when every
        # Kraus operator's K†K is diagonal, Born weights are one GEMM
        # against |psi|^2 and only the *chosen* branch is ever applied.
        self._jump_plans: dict[int, np.ndarray | None] = {}
        # Execution plan (lazily built): runs of >= 2 consecutive diagonal
        # unitaries (e.g. a QAOA phase separator, cross-Kerr Trotter layers)
        # are fused into one cached full-register diagonal multiply.  The
        # cache records the circuit's mutation counter so *any* mutation —
        # appends and length-preserving replacements alike — invalidates
        # it (and the per-channel jump plans, which are keyed on
        # instruction identity and could otherwise alias a freed object).
        self._exec_plan: tuple[object, list[tuple[str, object]]] | None = None

    # ------------------------------------------------------------------
    # batched engine
    # ------------------------------------------------------------------
    def _chunk_sizes(self, n_trajectories: int) -> list[int]:
        """Split a trajectory count into memory-bounded batch chunks."""
        dim = total_dim(self.circuit.dims)
        cap = self._max_batch or max(1, _MAX_BATCH_AMPLITUDES // dim)
        out = []
        remaining = n_trajectories
        while remaining > 0:
            take = min(cap, remaining)
            out.append(take)
            remaining -= take
        return out

    def evolve_states(
        self, tensor: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Run the circuit once over a batch of states.

        Args:
            tensor: amplitudes of shape ``circuit.dims + (B,)`` — one
                trajectory per trailing-axis slice.  A rank-``n`` tensor
                (no batch axis) is also accepted and evolved as ``B = 1``.
            rng: generator for the stochastic draws of this run; defaults
                to the simulator's own stream.  The chunked drivers pass a
                spawned per-chunk generator here so each chunk's
                randomness is independent of every other chunk's draw
                count.

        Returns:
            The evolved batch, same shape as the input.
        """
        rng = self._rng if rng is None else rng
        dims = self.circuit.dims
        squeeze = tensor.ndim == len(dims)
        if squeeze:
            tensor = tensor[..., None]
        if tensor.shape[: len(dims)] != dims or tensor.ndim != len(dims) + 1:
            raise SimulationError(
                f"batch tensor shape {tensor.shape} does not match register "
                f"dims {dims} plus one batch axis"
            )
        for kind, payload in self._execution_plan():
            if kind == "fused_diagonal":
                tensor = tensor * payload[..., None]
                continue
            instruction = payload
            if instruction.kind == "unitary":
                tensor = apply_matrix(
                    tensor,
                    instruction.matrix,
                    dims,
                    instruction.qudits,
                    structure=instruction.structure(),
                )
            elif instruction.kind == "channel":
                tensor = self._jump_batch(tensor, instruction, rng)
            elif instruction.kind == "measure":
                continue
            elif instruction.kind == "reset":
                tensor = self._reset_batch(tensor, instruction.qudits[0], rng)
            else:  # pragma: no cover - validated at circuit build time
                raise SimulationError(f"unknown kind {instruction.kind}")
        return tensor[..., 0] if squeeze else tensor

    def _execution_plan(self) -> list[tuple[str, object]]:
        """Instruction stream with consecutive diagonal unitaries fused.

        Same-wire single-qudit runs are first collapsed by
        :func:`~repro.core.statevector.fused_instructions`; then a run of
        >= 2 diagonal unitaries collapses into one precomputed
        full-register diagonal tensor (``"fused_diagonal"`` step) — e.g. a
        14-edge QAOA phase separator becomes a single elementwise multiply.
        Rebuilt automatically when the circuit has mutated since the last
        run (keyed on the circuit's mutation counter, so length-preserving
        replacements invalidate it too).
        """
        version = getattr(self.circuit, "_version", None)
        if self._exec_plan is not None and self._exec_plan[0] == version:
            return self._exec_plan[1]
        # A rebuilt plan means the instruction objects may have changed;
        # drop the id-keyed channel plans so a new instruction allocated at
        # a freed address can never inherit the old one's weights.
        self._jump_plans.clear()
        from .statevector import fused_instructions
        from .structure import DIAGONAL

        dims = self.circuit.dims

        def _is_diagonal(ins: Instruction) -> bool:
            return ins.kind == "unitary" and ins.structure().kind == DIAGONAL

        plan: list[tuple[str, object]] = []
        instructions = list(fused_instructions(self.circuit))
        i = 0
        while i < len(instructions):
            if _is_diagonal(instructions[i]):
                j = i
                while j < len(instructions) and _is_diagonal(instructions[j]):
                    j += 1
                if j - i >= 2:
                    fused = np.ones(dims, dtype=complex)
                    for ins in instructions[i:j]:
                        fused *= broadcast_over_targets(
                            ins.structure().diag, dims, list(ins.qudits)
                        )
                    plan.append(("fused_diagonal", fused))
                    i = j
                    continue
            plan.append(("instruction", instructions[i]))
            i += 1
        self._exec_plan = (version, plan)
        return plan

    def _categorical_draw(
        self,
        weights: np.ndarray,
        zero_message: str,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Vectorised inverse-CDF draw: one category per column of ``weights``.

        Args:
            weights: nonnegative array of shape ``(K, B)`` (need not be
                normalised per column).
            zero_message: error text when a column has zero total weight.
            rng: generator to draw from (defaults to the simulator stream).

        Returns:
            Integer array of shape ``(B,)`` with entries in ``[0, K)``.
        """
        totals = weights.sum(axis=0)
        if np.any(totals <= 0):
            raise SimulationError(zero_message)
        rng = self._rng if rng is None else rng
        draws = rng.random(weights.shape[1]) * totals
        cumulative = np.cumsum(weights, axis=0)
        return np.minimum(
            (cumulative < draws[None, :]).sum(axis=0), weights.shape[0] - 1
        )

    def _channel_weight_plan(self, instruction: Instruction) -> np.ndarray | None:
        """Born-weight GEMM plan for a channel, or ``None`` if inapplicable.

        When every Kraus operator ``K`` has diagonal ``K†K`` (true for
        diagonal and monomial operators and for column-sparse ops like
        photon loss), ``||K psi||^2 = sum_i G_ii |psi_i|^2`` — so all branch
        weights for the whole batch reduce to one ``(K, D) @ (D, B)`` matmul
        and only the selected branch ever needs applying.
        """
        key = id(instruction)
        if key in self._jump_plans:
            return self._jump_plans[key]
        dims = self.circuit.dims
        targets = list(instruction.qudits)
        rows = []
        plan: np.ndarray | None = None
        for op in instruction.kraus:
            gram = op.conj().T @ op
            off = gram.copy()
            np.fill_diagonal(off, 0)
            if off.any():
                break
            g_local = np.ascontiguousarray(np.real(np.diagonal(gram)))
            rows.append(
                np.broadcast_to(
                    broadcast_over_targets(g_local, dims, targets), dims
                ).reshape(-1)
            )
        else:
            plan = np.array(rows)
        self._jump_plans[key] = plan
        return plan

    def _jump_batch(
        self,
        tensor: np.ndarray,
        instruction: Instruction,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Kraus jump on the whole batch: vectorised Born branch selection."""
        dims = self.circuit.dims
        kraus = instruction.kraus
        structures = instruction.kraus_structures()
        n_batch = tensor.shape[-1]
        dim = total_dim(dims)
        weight_plan = self._channel_weight_plan(instruction)
        flat = tensor.reshape(dim, n_batch)
        candidates: list[np.ndarray] | None = None
        if weight_plan is not None:
            born = flat.real**2 + flat.imag**2  # |psi_i|^2 per trajectory
            weights = weight_plan @ born
        else:
            candidates = []
            weights = np.empty((len(kraus), n_batch))
            for k, (op, structure) in enumerate(zip(kraus, structures)):
                cand = np.ascontiguousarray(
                    apply_matrix(
                        tensor, op, dims, instruction.qudits, structure=structure
                    ).reshape(dim, n_batch)
                )
                candidates.append(cand)
                view = cand.view(np.float64).reshape(dim, n_batch, 2)
                weights[k] = np.einsum("ibc,ibc->b", view, view)
        choice = self._categorical_draw(
            weights, "all Kraus branches annihilated the state", rng
        )
        norms = np.sqrt(weights[choice, np.arange(n_batch)])
        if candidates is not None:
            out = np.empty((dim, n_batch), dtype=complex)
            for k, cand in enumerate(candidates):
                mask = choice == k
                if mask.any():
                    out[:, mask] = cand[:, mask]
        else:
            # Apply the majority branch to the whole batch with one kernel
            # call, then patch only the minority columns — column masking
            # is far more expensive than the kernels themselves.
            counts = np.bincount(choice, minlength=len(kraus))
            major = int(counts.argmax())
            out = apply_matrix(
                tensor, kraus[major], dims, instruction.qudits,
                structure=structures[major],
            ).reshape(dim, n_batch)
            if not out.flags.writeable or out.base is tensor:
                out = out.copy()
            for k in range(len(kraus)):
                if k == major or counts[k] == 0:
                    continue
                mask = choice == k
                sub = np.ascontiguousarray(flat[:, mask]).reshape(dims + (-1,))
                out[:, mask] = apply_matrix(
                    sub, kraus[k], dims, instruction.qudits,
                    structure=structures[k],
                ).reshape(dim, -1)
        out /= norms[None, :]
        return out.reshape(tensor.shape)

    def _reset_batch(
        self,
        tensor: np.ndarray,
        wire: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Measure one wire batch-wide and send every outcome to |0>."""
        dims = self.circuit.dims
        d = dims[wire]
        n_batch = tensor.shape[-1]
        moved = np.moveaxis(tensor, wire, -2)  # (..., d, B)
        flat = moved.reshape(-1, d, n_batch)
        probs = (np.abs(flat) ** 2).sum(axis=0)  # (d, B)
        outcome = self._categorical_draw(
            probs, "cannot measure a zero-norm trajectory", rng
        )
        batch_idx = np.arange(n_batch)
        branch = flat[:, outcome, batch_idx]  # (D/d, B) amplitudes kept
        norms = np.sqrt(probs[outcome, batch_idx])
        collapsed = np.zeros_like(flat)
        collapsed[:, 0, :] = branch / norms[None, :]
        return np.moveaxis(collapsed.reshape(moved.shape), -2, wire)

    def run_batch(
        self, n_trajectories: int, initial: Statevector | None = None
    ) -> np.ndarray:
        """Evolve ``n_trajectories`` i.i.d. trajectories to their final states.

        Evolution is chunked so the *working* batch stays memory-bounded;
        note the returned array itself is ``O(dim * n_trajectories)`` — for
        huge trajectory counts prefer :meth:`sample` / :meth:`expectation`
        / :meth:`average_density`, which stream over the chunks.

        Returns:
            Complex array of shape ``(dim, n_trajectories)`` — column ``b``
            is trajectory ``b``'s final (normalised) statevector.
        """
        if n_trajectories < 1:
            raise SimulationError("need at least one trajectory")
        if initial is None:
            initial = Statevector.zero(self.circuit.dims)
        dim = initial.dim
        out = np.empty((dim, n_trajectories), dtype=complex)
        start = 0
        for final, _ in self._iter_batches(n_trajectories, initial):
            size = final.shape[1]
            out[:, start : start + size] = final
            start += size
        return out

    def _iter_batches(self, n_trajectories: int, initial: Statevector):
        """Yield ``(final_chunk, chunk_rng)`` pairs, one per memory chunk.

        Each chunk evolves under its own generator, seeded through
        :func:`~repro.core.rng.spawn_seeds` from a single draw on the
        simulator stream: chunk ``i``'s randomness depends only on that
        root and ``i`` — never on how many draws earlier chunks consumed —
        so per-chunk results are reproducible under any chunk execution
        order (the property the campaign runner's process pool relies on).
        The chunk generator is yielded alongside the final states so
        terminal sampling draws stay on the chunk's own stream.
        """
        dim = initial.dim
        sizes = self._chunk_sizes(n_trajectories)
        seeds = spawn_seeds(derive_seed(self._rng), len(sizes))
        for index, (size, seed) in enumerate(zip(sizes, seeds)):
            batch = np.ascontiguousarray(
                np.broadcast_to(
                    initial.tensor[..., None], initial.tensor.shape + (size,)
                )
            )
            gen = np.random.default_rng(seed)
            if _metrics.enabled or _tracing.enabled:
                _metrics.inc("trajectory_chunks", backend="trajectories")
                _metrics.inc(
                    "trajectories_evolved", size, backend="trajectories"
                )
                # The chunk is evolved inside the span, then yielded
                # outside it, so consumer time never inflates the span.
                with _tracing.span(
                    "trajectory_chunk",
                    backend="trajectories",
                    index=index,
                    size=size,
                ):
                    final = self.evolve_states(batch, rng=gen).reshape(dim, size)
                yield final, gen
            else:
                yield self.evolve_states(batch, rng=gen).reshape(dim, size), gen

    def _sample_indices(
        self, flat: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """One Born-sampled basis index per trajectory column."""
        probs = np.abs(flat) ** 2
        return self._categorical_draw(
            probs, "cannot sample a zero-norm state", rng
        )

    # ------------------------------------------------------------------
    # reference (unbatched) implementation
    # ------------------------------------------------------------------
    def _run_single(self, initial: Statevector) -> Statevector:
        """Evolve one trajectory through the circuit (seed reference path).

        Kept as the correctness/benchmark baseline for the batched engine;
        not used by the public API.
        """
        state = initial
        for instruction in self.circuit:
            if instruction.kind == "unitary":
                state = state.apply(
                    instruction.matrix,
                    instruction.qudits,
                    structure=instruction.structure(),
                )
            elif instruction.kind == "channel":
                state = self._jump(state, instruction.kraus, instruction.qudits)
            elif instruction.kind == "measure":
                continue
            elif instruction.kind == "reset":
                wire = instruction.qudits[0]
                _, state = state.measure_qudit(wire, rng=self._rng)
                state = self._force_zero(state, wire)
            else:  # pragma: no cover - validated at circuit build time
                raise SimulationError(f"unknown kind {instruction.kind}")
        return state

    def _force_zero(self, state: Statevector, wire: int) -> Statevector:
        """Map whatever basis value the wire holds to |0> (post-measure reset)."""
        d = state.dims[wire]
        # After projective measurement the wire is in a definite basis state;
        # find it from the marginal and apply the cyclic shift sending it to 0.
        marginal = np.abs(state.tensor) ** 2
        axes = tuple(ax for ax in range(len(state.dims)) if ax != wire)
        probs = marginal.sum(axis=axes)
        value = int(np.argmax(probs))
        if value == 0:
            return state
        from .gates import weyl_x

        return state.apply(weyl_x(d, -value), wire)

    def _jump(
        self,
        state: Statevector,
        kraus: Sequence[np.ndarray],
        targets: tuple[int, ...],
    ) -> Statevector:
        """Pick one Kraus branch with Born probability and renormalise."""
        weights = []
        candidates = []
        for op in kraus:
            new = state.apply(op, targets)
            weight = new.norm() ** 2
            weights.append(weight)
            candidates.append(new)
        weights = np.asarray(weights)
        total = weights.sum()
        if total <= 0:
            raise SimulationError("all Kraus branches annihilated the state")
        choice = int(self._rng.choice(len(kraus), p=weights / total))
        return candidates[choice].normalized()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sample(
        self,
        shots: int,
        initial: Statevector | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Draw ``shots`` outcomes, one fresh trajectory per shot.

        All trajectories evolve together through the batched engine and
        terminal measurement is one vectorised Born draw per chunk.
        """
        if shots < 1:
            raise SimulationError("need at least one shot")
        if initial is None:
            initial = Statevector.zero(self.circuit.dims)
        counts: dict[tuple[int, ...], int] = {}
        for final, gen in self._iter_batches(shots, initial):
            indices = self._sample_indices(final, gen)
            values, occurrences = np.unique(indices, return_counts=True)
            for index, count in zip(values, occurrences):
                digits = index_to_digits(int(index), self.circuit.dims)
                counts[digits] = counts.get(digits, 0) + int(count)
        return counts

    def expectation(
        self,
        observable: Callable[[Statevector], float],
        n_trajectories: int,
        initial: Statevector | None = None,
    ) -> tuple[float, float]:
        """Trajectory-averaged expectation of a state functional.

        Args:
            observable: maps a final pure state to a real number.
            n_trajectories: number of stochastic repetitions.
            initial: starting state (defaults to all-|0>).

        Returns:
            ``(mean, standard_error)`` over trajectories.
        """
        if n_trajectories < 1:
            raise SimulationError("need at least one trajectory")
        if initial is None:
            initial = Statevector.zero(self.circuit.dims)
        dims = self.circuit.dims
        values = np.empty(n_trajectories)
        start = 0
        for final, _ in self._iter_batches(n_trajectories, initial):
            for b in range(final.shape[1]):
                values[start + b] = observable(Statevector(final[:, b], dims))
            start += final.shape[1]
        stderr = (
            float(values.std(ddof=1) / np.sqrt(n_trajectories))
            if n_trajectories > 1
            else 0.0
        )
        return float(values.mean()), stderr

    def matrix_expectation(
        self,
        operator: np.ndarray,
        n_trajectories: int,
        initial: Statevector | None = None,
    ) -> tuple[float, float]:
        """Trajectory-averaged ``<psi|O|psi>`` for a dense full-register operator.

        Fully vectorised over the batch — no per-trajectory Python loop —
        so it is the preferred form for observable sweeps.

        Returns:
            ``(mean, standard_error)`` of the real part over trajectories.
        """
        if n_trajectories < 1:
            raise SimulationError("need at least one trajectory")
        if initial is None:
            initial = Statevector.zero(self.circuit.dims)
        operator = np.asarray(operator, dtype=complex)
        values = np.empty(n_trajectories)
        start = 0
        for final, _ in self._iter_batches(n_trajectories, initial):
            values[start : start + final.shape[1]] = np.real(
                np.einsum("ib,ij,jb->b", final.conj(), operator, final)
            )
            start += final.shape[1]
        stderr = (
            float(values.std(ddof=1) / np.sqrt(n_trajectories))
            if n_trajectories > 1
            else 0.0
        )
        return float(values.mean()), stderr

    def average_density(
        self, n_trajectories: int, initial: Statevector | None = None
    ) -> np.ndarray:
        """Trajectory-averaged density matrix (small registers only)."""
        if n_trajectories < 1:
            raise SimulationError("need at least one trajectory")
        if initial is None:
            initial = Statevector.zero(self.circuit.dims)
        dim = initial.dim
        if dim > 512:
            raise SimulationError(
                f"register dim {dim} too large to accumulate a density matrix"
            )
        rho = np.zeros((dim, dim), dtype=complex)
        for final, _ in self._iter_batches(n_trajectories, initial):
            rho += final @ final.conj().T
        return rho / n_trajectories
