"""Random operators and states for testing and benchmarking.

Haar-random unitaries drive the synthesis benchmarks (the cited qudit
benchmarking work [9] uses random unitaries the same way); random Hermitians
and states feed the property-based test suite.
"""

from __future__ import annotations

import numpy as np

from .exceptions import DimensionError
from .rng import ensure_rng

__all__ = [
    "haar_unitary",
    "random_statevector",
    "random_hermitian",
    "random_density_matrix",
    "random_special_unitary",
]


def haar_unitary(d: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Haar-distributed ``d x d`` unitary via QR of a Ginibre matrix."""
    if d < 1:
        raise DimensionError(f"dimension must be >= 1, got {d}")
    rng = ensure_rng(rng)
    ginibre = rng.normal(size=(d, d)) + 1j * rng.normal(size=(d, d))
    q, r = np.linalg.qr(ginibre)
    # Fix the phase ambiguity so the distribution is exactly Haar.
    phases = np.diag(r).copy()
    phases /= np.abs(phases)
    return q * phases[np.newaxis, :]


def random_special_unitary(
    d: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Haar-like SU(d) element (unit determinant)."""
    u = haar_unitary(d, rng)
    det = np.linalg.det(u)
    return u * det ** (-1.0 / d)


def random_statevector(
    d: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Haar-random pure state amplitudes of dimension ``d``."""
    if d < 1:
        raise DimensionError(f"dimension must be >= 1, got {d}")
    rng = ensure_rng(rng)
    vec = rng.normal(size=d) + 1j * rng.normal(size=d)
    return vec / np.linalg.norm(vec)


def random_hermitian(
    d: int, rng: np.random.Generator | None = None, scale: float = 1.0
) -> np.ndarray:
    """GUE-like random Hermitian matrix."""
    if d < 1:
        raise DimensionError(f"dimension must be >= 1, got {d}")
    rng = ensure_rng(rng)
    mat = rng.normal(size=(d, d)) + 1j * rng.normal(size=(d, d))
    return scale * (mat + mat.conj().T) / 2.0


def random_density_matrix(
    d: int, rank: int | None = None, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Random density matrix from a Ginibre purification of given rank."""
    if d < 1:
        raise DimensionError(f"dimension must be >= 1, got {d}")
    rng = ensure_rng(rng)
    rank = d if rank is None else int(rank)
    if not 1 <= rank <= d:
        raise DimensionError(f"rank {rank} outside [1, {d}]")
    ginibre = rng.normal(size=(d, rank)) + 1j * rng.normal(size=(d, rank))
    rho = ginibre @ ginibre.conj().T
    return rho / np.trace(rho)
