"""Density-matrix simulation for noisy qudit circuits.

Exact (non-stochastic) noisy simulation: the state is a full density matrix,
channels are applied Kraus-by-Kraus via the same tensor contraction engine as
the statevector simulator (left multiplication on kets, right on bras).
Memory is ``O(D^2)``, so this backend is for small registers; larger noisy
circuits use :mod:`repro.core.trajectories`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .channels import QuditChannel
from .circuit import Instruction, QuditCircuit
from .dims import digits_to_index, index_to_digits, total_dim, validate_dims
from .exceptions import DimensionError, SimulationError
from .rng import ensure_rng, sanitize_probabilities
from .statevector import Statevector, apply_matrix, broadcast_over_targets
from .structure import DIAGONAL, GateStructure, classify_gate

__all__ = ["DensityMatrix"]


def _conj_structure(structure: GateStructure) -> GateStructure:
    """Structure of the complex conjugate of a classified matrix (cached).

    Conjugation preserves the zero pattern, so a diagonal/permutation
    classification carries over — the bra-side application of each Kraus
    operator reuses the same fast path without re-classifying per call.
    """
    cached = structure.plans.get("conj")
    if cached is None:
        cached = classify_gate(structure.matrix.conj())
        structure.plans["conj"] = cached
    return cached


class DensityMatrix:
    """A (possibly mixed) state of a mixed-dimension qudit register."""

    def __init__(self, data: np.ndarray, dims: Sequence[int]) -> None:
        self.dims = validate_dims(dims)
        dim = total_dim(self.dims)
        data = np.asarray(data, dtype=complex)
        if data.shape != (dim, dim):
            raise DimensionError(
                f"density matrix shape {data.shape} != ({dim}, {dim})"
            )
        self._matrix = data

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, dims: Sequence[int]) -> "DensityMatrix":
        """All-|0> pure state as a density matrix."""
        return cls.from_statevector(Statevector.zero(dims))

    @classmethod
    def basis(cls, dims: Sequence[int], digits: Sequence[int]) -> "DensityMatrix":
        """Computational-basis pure state ``|digits><digits|``."""
        return cls.from_statevector(Statevector.basis(dims, digits))

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """``|psi><psi|`` from a pure state."""
        vec = state.vector
        return cls(np.outer(vec, vec.conj()), state.dims)

    @classmethod
    def maximally_mixed(cls, dims: Sequence[int]) -> "DensityMatrix":
        """``I / D``."""
        dims = validate_dims(dims)
        dim = total_dim(dims)
        return cls(np.eye(dim, dtype=complex) / dim, dims)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The raw density matrix."""
        return self._matrix

    @property
    def dim(self) -> int:
        """Total Hilbert-space dimension."""
        return total_dim(self.dims)

    def copy(self) -> "DensityMatrix":
        """Deep copy."""
        return DensityMatrix(self._matrix.copy(), self.dims)

    def trace(self) -> float:
        """Real part of the trace (1 for physical states)."""
        return float(np.real(np.trace(self._matrix)))

    def purity(self) -> float:
        """``Tr(rho^2)``; 1 iff pure."""
        return float(np.real(np.trace(self._matrix @ self._matrix)))

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def _apply_local(
        self,
        matrices: Sequence[np.ndarray],
        targets: tuple[int, ...],
        structures: Sequence[GateStructure] | None = None,
    ) -> np.ndarray:
        """Apply ``sum_i K_i rho K_i†`` on local targets via tensor ops."""
        n = len(self.dims)
        tensor = self._matrix.reshape(self.dims + self.dims)
        out = np.zeros_like(tensor)
        bra_targets = tuple(t + n for t in targets)
        if structures is None:
            structures = [None] * len(matrices)
        if _metrics.enabled or _tracing.enabled:
            kinds = {
                (classify_gate(op) if s is None else s).kind
                for op, s in zip(matrices, structures)
            }
            kind = kinds.pop() if len(kinds) == 1 else "mixed"
            _metrics.inc("gate_applies", backend="density", kind=kind)
            with _tracing.span(
                "gate_apply", backend="density", kind=kind, kraus=len(matrices)
            ):
                return self._apply_local_terms(
                    tensor, out, matrices, structures, targets, bra_targets
                )
        return self._apply_local_terms(
            tensor, out, matrices, structures, targets, bra_targets
        )

    def _apply_local_terms(
        self, tensor, out, matrices, structures, targets, bra_targets
    ) -> np.ndarray:
        for op, structure in zip(matrices, structures):
            term = apply_matrix(
                tensor, op, self.dims * 2, targets, structure=structure
            )
            term = apply_matrix(
                term,
                op.conj(),
                self.dims * 2,
                bra_targets,
                structure=None if structure is None else _conj_structure(structure),
            )
            out += term
        return out.reshape(self.dim, self.dim)

    def _apply_kraus_batched(
        self, matrices: Sequence[np.ndarray], targets: tuple[int, ...]
    ) -> np.ndarray | None:
        """Whole-family Kraus application as one batched contraction.

        For an ascending contiguous target run both the ket and the bra
        target axes are contiguous in the ``rho`` tensor, so the state
        reshapes (view, no copy) to ``(A, d_gate, B, d_gate, C)`` and the
        entire family applies as a single einsum over the stacked
        ``(m, d_gate, d_gate)`` operator array — two GEMMs instead of a
        Python loop of ``2 m`` tensor contractions plus ``m`` accumulation
        passes.  Returns ``None`` when the targets are not such a run
        (caller falls back to the per-operator loop).
        """
        k = len(targets)
        first = targets[0]
        if list(targets) != list(range(first, first + k)):
            return None
        n = len(self.dims)
        size_a = 1
        for d in self.dims[:first]:
            size_a *= d
        size_c = 1
        for d in self.dims[first + k:]:
            size_c *= d
        gate_dim = matrices[0].shape[0]
        stack = np.stack([np.asarray(m, dtype=complex) for m in matrices])
        rho5 = self._matrix.reshape(
            size_a, gate_dim, size_c * size_a, gate_dim, size_c
        )
        out = np.einsum(
            "mab,xbycz,mdc->xaydz",
            stack,
            rho5,
            stack.conj(),
            optimize=True,
        )
        return out.reshape(self.dim, self.dim)

    def _apply_diagonal_channel(
        self, diags: np.ndarray, targets: tuple[int, ...]
    ) -> np.ndarray:
        """All-diagonal Kraus family as *one* elementwise multiply.

        For ``K_i = diag(d_i)`` the channel acts elementwise on rho:
        ``rho'[a, b] = rho[a, b] * sum_i d_i[a] conj(d_i[b])`` over the
        joint target levels — the whole Kraus loop (two contractions per
        operator) collapses into a single broadcast product.
        """
        n = len(self.dims)
        weight = diags.T @ diags.conj()  # (d_gate, d_gate): ket x bra
        axes = list(targets) + [t + n for t in targets]
        factor = broadcast_over_targets(
            weight.reshape(-1), self.dims * 2, axes
        )
        tensor = self._matrix.reshape(self.dims + self.dims) * factor
        return tensor.reshape(self.dim, self.dim)

    def _apply_channel_instruction(self, instruction: Instruction) -> "DensityMatrix":
        """Channel application using the per-instruction structure cache.

        Channels whose Kraus operators are *all* diagonal (dephasing,
        Kerr-type noise, the phase branches of Weyl channels) vectorise to
        one elementwise multiply; non-diagonal families on a contiguous
        target run batch into a single stacked contraction
        (:meth:`_apply_kraus_batched`); anything else runs the per-operator
        loop with cached structures, so diagonal/permutation operators
        still hit the O(D^2) fast kernels without per-call
        re-classification.
        """
        structures = instruction.kraus_structures()
        targets = tuple(instruction.qudits)
        if _metrics.enabled or _tracing.enabled:
            kinds = {s.kind for s in structures}
            kind = kinds.pop() if len(kinds) == 1 else "mixed"
            _metrics.inc("channel_applies", backend="density", kind=kind)
            with _tracing.span(
                "channel_apply", backend="density", kind=kind, kraus=len(structures)
            ):
                return self._apply_channel_dispatch(instruction, structures, targets)
        return self._apply_channel_dispatch(instruction, structures, targets)

    def _apply_channel_dispatch(
        self, instruction: Instruction, structures, targets
    ) -> "DensityMatrix":
        if all(s.kind == DIAGONAL for s in structures):
            diags = np.stack([s.diag for s in structures])
            return DensityMatrix(
                self._apply_diagonal_channel(diags, targets), self.dims
            )
        if len(instruction.kraus) > 1:
            batched = self._apply_kraus_batched(instruction.kraus, targets)
            if batched is not None:
                return DensityMatrix(batched, self.dims)
        return DensityMatrix(
            self._apply_local(instruction.kraus, targets, structures), self.dims
        )

    def apply_unitary(
        self, matrix: np.ndarray, targets: int | Sequence[int]
    ) -> "DensityMatrix":
        """Conjugate by a local unitary: ``U rho U†``."""
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        mat = self._apply_local([np.asarray(matrix, dtype=complex)], tuple(targets))
        return DensityMatrix(mat, self.dims)

    def apply_kraus(
        self, kraus: Sequence[np.ndarray], targets: int | Sequence[int]
    ) -> "DensityMatrix":
        """Apply a Kraus channel on local targets."""
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        ops = [np.asarray(k, dtype=complex) for k in kraus]
        return DensityMatrix(self._apply_local(ops, tuple(targets)), self.dims)

    def apply_channel(
        self, channel: QuditChannel, targets: int | Sequence[int]
    ) -> "DensityMatrix":
        """Apply a :class:`QuditChannel` on local targets."""
        return self.apply_kraus(channel.kraus, targets)

    def evolve(self, circuit: QuditCircuit) -> "DensityMatrix":
        """Run a circuit, honouring unitary, channel, and reset instructions.

        Unitaries and Kraus operators dispatch through the per-instruction
        structure cache; channels whose operators are all diagonal collapse
        to a single vectorised elementwise multiply
        (:meth:`_apply_channel_instruction`).
        """
        if circuit.dims != self.dims:
            raise DimensionError(
                f"circuit dims {circuit.dims} != state dims {self.dims}"
            )
        state = self
        for instruction in circuit:
            if instruction.kind == "unitary":
                state = DensityMatrix(
                    state._apply_local(
                        [instruction.matrix],
                        tuple(instruction.qudits),
                        [instruction.structure()],
                    ),
                    state.dims,
                )
            elif instruction.kind == "channel":
                state = state._apply_channel_instruction(instruction)
            elif instruction.kind == "measure":
                continue
            elif instruction.kind == "reset":
                state = state._reset_wire(instruction.qudits[0])
            else:  # pragma: no cover - kinds are validated at build time
                raise SimulationError(f"unknown instruction kind {instruction.kind}")
        return state

    def _reset_wire(self, qudit: int) -> "DensityMatrix":
        """Trace out one wire and re-prepare it in |0>."""
        d = self.dims[qudit]
        kraus = []
        for k in range(d):
            op = np.zeros((d, d), dtype=complex)
            op[0, k] = 1.0
            kraus.append(op)
        return self.apply_kraus(kraus, qudit)

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Diagonal of rho — computational-basis outcome probabilities."""
        return np.real(np.diag(self._matrix)).clip(min=0.0)

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> complex:
        """``Tr(rho O)`` for a global (``targets=None``) or local operator."""
        op = np.asarray(operator, dtype=complex)
        if targets is None:
            if op.shape != (self.dim, self.dim):
                raise DimensionError(
                    f"global operator shape {op.shape} != ({self.dim}, {self.dim})"
                )
            return complex(np.trace(self._matrix @ op))
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        reduced = self.partial_trace(list(targets))
        return complex(np.trace(reduced @ op))

    def fidelity_with_pure(self, state: Statevector) -> float:
        """``<psi| rho |psi>`` against a pure reference state."""
        if state.dims != self.dims:
            raise DimensionError("fidelity requires matching register dims")
        vec = state.vector
        return float(np.real(vec.conj() @ self._matrix @ vec))

    def partial_trace(self, keep: Sequence[int]) -> np.ndarray:
        """Reduced density matrix over ``keep`` wires (in the given order)."""
        keep = list(keep)
        n = len(self.dims)
        others = [ax for ax in range(n) if ax not in keep]
        tensor = self._matrix.reshape(self.dims + self.dims)
        perm = keep + others + [k + n for k in keep] + [o + n for o in others]
        tensor = np.transpose(tensor, perm)
        d_keep = int(np.prod([self.dims[a] for a in keep])) if keep else 1
        d_rest = int(np.prod([self.dims[a] for a in others])) if others else 1
        tensor = tensor.reshape(d_keep, d_rest, d_keep, d_rest)
        return np.einsum("arbr->ab", tensor)

    def sample(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[tuple[int, ...], int]:
        """Sample computational-basis outcomes from the diagonal."""
        rng = ensure_rng(rng)
        # The diagonal of rho carries tiny negative entries from float
        # rounding; rng.multinomial raises on them, so clip-and-normalise
        # through the shared helper.
        probs = sanitize_probabilities(np.real(np.diag(self._matrix)))
        outcomes = rng.multinomial(shots, probs)
        counts: dict[tuple[int, ...], int] = {}
        for index in np.nonzero(outcomes)[0]:
            counts[index_to_digits(int(index), self.dims)] = int(outcomes[index])
        return counts

    def probability_of(self, digits: Sequence[int]) -> float:
        """Probability of one specific basis outcome."""
        index = digits_to_index(digits, self.dims)
        return float(np.real(self._matrix[index, index]))
