"""Qudit circuit intermediate representation.

:class:`QuditCircuit` is the central IR of the toolkit: an ordered list of
:class:`Instruction` objects acting on a register of mixed-dimension qudits.
Unlike mainstream qubit toolkits, every wire carries its own dimension, so a
circuit can mix, say, a ``d=10`` cavity mode with a ``d=3`` qutrit — the
situation the paper identifies as unsupported by existing stacks.

Instructions fall into three kinds:

* ``unitary`` — carries a dense matrix over its target wires;
* ``channel`` — carries a list of Kraus operators (noise insertion);
* ``measure`` / ``reset`` — non-unitary bookkeeping used by simulators.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from . import gates
from .dims import total_dim, validate_dims
from .exceptions import CircuitError
from .structure import GateStructure, classify_gate

__all__ = ["Instruction", "QuditCircuit"]

#: Instruction kinds understood by the simulators.
_KINDS = ("unitary", "channel", "measure", "reset")


@dataclass(frozen=True)
class Instruction:
    """One operation on a subset of circuit wires.

    Attributes:
        name: human-readable gate/channel name (used by resource counting).
        kind: one of ``unitary``, ``channel``, ``measure``, ``reset``.
        qudits: target wire indices, in matrix tensor order (big-endian).
        matrix: dense unitary for ``kind == 'unitary'`` else ``None``.
        kraus: Kraus operator list for ``kind == 'channel'`` else ``None``.
        params: free-form parameter record (angles, amplitudes, ...).
    """

    name: str
    kind: str
    qudits: tuple[int, ...]
    matrix: np.ndarray | None = None
    kraus: tuple[np.ndarray, ...] | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise CircuitError(f"unknown instruction kind {self.kind!r}")
        if self.kind == "unitary" and self.matrix is None:
            raise CircuitError(f"unitary instruction {self.name!r} needs a matrix")
        if self.kind == "channel" and not self.kraus:
            raise CircuitError(f"channel instruction {self.name!r} needs Kraus ops")
        if len(set(self.qudits)) != len(self.qudits):
            raise CircuitError(f"duplicate target wires in {self.qudits}")

    @property
    def num_qudits(self) -> int:
        """Number of wires this instruction touches."""
        return len(self.qudits)

    def structure(self) -> GateStructure | None:
        """Cached fast-path structure of a unitary's matrix.

        Classified once on first use (the instruction is immutable, so the
        result is stashed on the instance); simulators pass it to
        :func:`~repro.core.statevector.apply_matrix` so Trotter circuits
        that repeat the same instruction never re-classify or re-reshape
        the gate.  ``None`` for non-unitary instructions.
        """
        if self.kind != "unitary":
            return None
        cached = self.__dict__.get("_structure")
        if cached is None:
            cached = classify_gate(self.matrix)
            object.__setattr__(self, "_structure", cached)
        return cached

    def kraus_structures(self) -> tuple[GateStructure, ...] | None:
        """Cached fast-path structures of a channel's Kraus operators.

        ``None`` for non-channel instructions.
        """
        if self.kind != "channel":
            return None
        cached = self.__dict__.get("_kraus_structures")
        if cached is None:
            cached = tuple(classify_gate(op) for op in self.kraus)
            object.__setattr__(self, "_kraus_structures", cached)
        return cached

    def is_entangling(self) -> bool:
        """True for unitaries touching two or more wires."""
        return self.kind == "unitary" and self.num_qudits >= 2

    def feed_fingerprint(self, hasher) -> None:
        """Feed this instruction's *content* into a hash object.

        Covers everything that affects simulation semantics — name, kind,
        wires, and the exact bytes (with dtype and shape) of the matrix /
        Kraus family — so two instructions hash alike iff they act
        identically.  ``params`` are deliberately excluded: they are
        free-form metadata already reflected in the matrices.
        """
        hasher.update(
            f"{self.name}|{self.kind}|{self.qudits}".encode()
        )
        arrays = []
        if self.matrix is not None:
            arrays.append(self.matrix)
        if self.kraus is not None:
            arrays.extend(self.kraus)
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            hasher.update(f"{arr.dtype.str}|{arr.shape}".encode())
            hasher.update(arr.tobytes())

    def dagger(self) -> "Instruction":
        """Adjoint instruction (unitaries only)."""
        if self.kind != "unitary":
            raise CircuitError(f"cannot invert non-unitary {self.name!r}")
        return Instruction(
            name=self.name + "_dg",
            kind="unitary",
            qudits=self.qudits,
            matrix=self.matrix.conj().T,
            params=dict(self.params),
        )


class QuditCircuit:
    """An ordered sequence of instructions over a mixed-dimension register.

    Example:
        >>> qc = QuditCircuit([3, 3])
        >>> qc.fourier(0)
        >>> qc.csum(0, 1)
        >>> qc.num_entangling()
        1
    """

    def __init__(self, dims: Sequence[int], name: str = "circuit") -> None:
        self.dims = validate_dims(dims)
        self.name = name
        self._instructions: list[Instruction] = []
        #: Mutation counter bumped by every instruction-list mutator —
        #: caches keyed on it (the fused-instruction plan) can never serve
        #: a stale entry after a length-preserving replacement.
        self._version = 0

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def num_qudits(self) -> int:
        """Number of wires."""
        return len(self.dims)

    @property
    def dim(self) -> int:
        """Total Hilbert-space dimension of the register."""
        return total_dim(self.dims)

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        """Immutable view of the instruction list."""
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __repr__(self) -> str:
        return (
            f"QuditCircuit(name={self.name!r}, dims={self.dims}, "
            f"n_instructions={len(self)})"
        )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def _check_wires(self, qudits: Sequence[int]) -> tuple[int, ...]:
        wires = tuple(int(q) for q in qudits)
        for q in wires:
            if not 0 <= q < self.num_qudits:
                raise CircuitError(
                    f"wire {q} out of range for {self.num_qudits}-qudit circuit"
                )
        return wires

    def _target_dim(self, wires: tuple[int, ...]) -> int:
        out = 1
        for q in wires:
            out *= self.dims[q]
        return out

    def _validate_instruction(self, instruction: Instruction) -> None:
        wires = self._check_wires(instruction.qudits)
        expected = self._target_dim(wires)
        op = instruction.matrix if instruction.kind == "unitary" else (
            instruction.kraus[0] if instruction.kind == "channel" else None
        )
        if op is not None and op.shape != (expected, expected):
            raise CircuitError(
                f"{instruction.name!r} has shape {op.shape} but wires {wires} "
                f"span dimension {expected}"
            )

    def append(self, instruction: Instruction) -> None:
        """Append a pre-built instruction, validating wire dimensions."""
        self._validate_instruction(instruction)
        self._instructions.append(instruction)
        self._version += 1

    def replace_instruction(self, index: int, instruction: Instruction) -> None:
        """Replace the instruction at ``index`` in place (validated).

        The length-preserving mutator: simulators cache per-circuit
        execution plans keyed on the mutation counter, so a replacement
        invalidates them just like an append does.
        """
        self._instructions[index]  # raise IndexError before validating
        self._validate_instruction(instruction)
        self._instructions[index] = instruction
        self._version += 1

    def unitary(
        self,
        matrix: np.ndarray,
        qudits: int | Sequence[int],
        name: str = "unitary",
        **params,
    ) -> None:
        """Append a dense unitary on the given wire(s)."""
        if isinstance(qudits, (int, np.integer)):
            qudits = (int(qudits),)
        matrix = np.asarray(matrix, dtype=complex)
        self.append(
            Instruction(
                name=name,
                kind="unitary",
                qudits=tuple(qudits),
                matrix=matrix,
                params=params,
            )
        )

    def channel(
        self,
        kraus: Sequence[np.ndarray],
        qudits: int | Sequence[int],
        name: str = "channel",
        **params,
    ) -> None:
        """Append a Kraus channel on the given wire(s)."""
        if isinstance(qudits, (int, np.integer)):
            qudits = (int(qudits),)
        ops = tuple(np.asarray(k, dtype=complex) for k in kraus)
        self.append(
            Instruction(
                name=name,
                kind="channel",
                qudits=tuple(qudits),
                kraus=ops,
                params=params,
            )
        )

    def measure(self, qudits: int | Sequence[int] | None = None) -> None:
        """Append a computational-basis measurement marker."""
        if qudits is None:
            qudits = range(self.num_qudits)
        if isinstance(qudits, (int, np.integer)):
            qudits = (int(qudits),)
        self.append(
            Instruction(name="measure", kind="measure", qudits=tuple(qudits))
        )

    def reset(self, qudit: int) -> None:
        """Append a reset-to-|0> marker on one wire."""
        self.append(Instruction(name="reset", kind="reset", qudits=(int(qudit),)))

    # ------------------------------------------------------------------
    # gate-library conveniences
    # ------------------------------------------------------------------
    def x(self, qudit: int, power: int = 1) -> None:
        """Weyl shift ``X^power`` on one wire."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(gates.weyl_x(d, power), qudit, name="x", power=power)

    def z(self, qudit: int, power: int = 1) -> None:
        """Weyl clock ``Z^power`` on one wire."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(gates.weyl_z(d, power), qudit, name="z", power=power)

    def fourier(self, qudit: int) -> None:
        """Qudit Fourier (Hadamard analogue) on one wire."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(gates.fourier(d), qudit, name="fourier")

    def snap(self, qudit: int, phases: Sequence[float]) -> None:
        """SNAP gate with the given per-Fock-level phases."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(
            gates.snap(d, phases), qudit, name="snap", phases=tuple(phases)
        )

    def rotation(
        self, qudit: int, i: int, j: int, theta: float, phi: float = 0.0
    ) -> None:
        """Givens rotation in the ``(|i>, |j>)`` subspace of one wire."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(
            gates.level_rotation(d, i, j, theta, phi),
            qudit,
            name="rot",
            levels=(i, j),
            theta=theta,
            phi=phi,
        )

    def displacement(self, qudit: int, alpha: complex) -> None:
        """Truncated displacement ``D(alpha)`` on one wire."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(
            gates.displacement(d, alpha), qudit, name="disp", alpha=alpha
        )

    def mixer(self, qudit: int, beta: float) -> None:
        """QAOA nearest-level mixing unitary on one wire."""
        d = self.dims[self._check_wires([qudit])[0]]
        self.unitary(gates.qudit_mixer(d, beta), qudit, name="mixer", beta=beta)

    def csum(self, control: int, target: int) -> None:
        """CSUM with the first wire as control."""
        control, target = self._check_wires([control, target])
        mat = gates.csum(self.dims[control], self.dims[target])
        self.unitary(mat, (control, target), name="csum")

    def csum_dagger(self, control: int, target: int) -> None:
        """Inverse CSUM with the first wire as control."""
        control, target = self._check_wires([control, target])
        mat = gates.csum_dagger(self.dims[control], self.dims[target])
        self.unitary(mat, (control, target), name="csum_dg")

    def controlled_phase(
        self, control: int, target: int, strength: float = 1.0
    ) -> None:
        """Qudit CZ-type diagonal entangler."""
        control, target = self._check_wires([control, target])
        mat = gates.controlled_phase(
            self.dims[control], self.dims[target], strength
        )
        self.unitary(mat, (control, target), name="cphase", strength=strength)

    def beamsplitter(
        self, mode_a: int, mode_b: int, theta: float, phi: float = 0.0
    ) -> None:
        """Beam-splitter interaction between two wires."""
        mode_a, mode_b = self._check_wires([mode_a, mode_b])
        mat = gates.beamsplitter(
            self.dims[mode_a], self.dims[mode_b], theta, phi
        )
        self.unitary(mat, (mode_a, mode_b), name="bs", theta=theta, phi=phi)

    def swap(self, wire_a: int, wire_b: int) -> None:
        """SWAP two same-dimension wires."""
        wire_a, wire_b = self._check_wires([wire_a, wire_b])
        da, db = self.dims[wire_a], self.dims[wire_b]
        if da != db:
            raise CircuitError(f"cannot SWAP dimensions {da} and {db}")
        mat = np.zeros((da * db, da * db), dtype=complex)
        for a in range(da):
            for b in range(db):
                mat[b * da + a, a * db + b] = 1.0
        self.unitary(mat, (wire_a, wire_b), name="swap")

    def permute_levels(self, qudit: int, perm: Sequence[int]) -> None:
        """Relabel basis states of one wire by a permutation (NDAR remap)."""
        d = self.dims[self._check_wires([qudit])[0]]
        if len(perm) != d:
            raise CircuitError(f"permutation length {len(perm)} != dim {d}")
        self.unitary(
            gates.permutation_gate(perm), qudit, name="perm", perm=tuple(perm)
        )

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def compose(self, other: "QuditCircuit") -> "QuditCircuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.dims != self.dims:
            raise CircuitError(
                f"cannot compose dims {self.dims} with {other.dims}"
            )
        out = self.copy()
        for instruction in other:
            out.append(instruction)
        return out

    def inverse(self) -> "QuditCircuit":
        """Adjoint circuit (requires all-unitary instructions)."""
        out = QuditCircuit(self.dims, name=self.name + "_dg")
        for instruction in reversed(self._instructions):
            out.append(instruction.dagger())
        return out

    def copy(self) -> "QuditCircuit":
        """Shallow copy (instructions are immutable, so sharing is safe)."""
        out = QuditCircuit(self.dims, name=self.name)
        out._instructions = list(self._instructions)
        return out

    def repeated(self, reps: int) -> "QuditCircuit":
        """Concatenate ``reps`` copies of this circuit (Trotter steps)."""
        if reps < 0:
            raise CircuitError("repetition count must be >= 0")
        out = QuditCircuit(self.dims, name=f"{self.name}^{reps}")
        for _ in range(reps):
            for instruction in self._instructions:
                out.append(instruction)
        return out

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the circuit (hex digest).

        Two circuits share a fingerprint iff they have the same register
        dims and instruction-by-instruction identical content (names,
        kinds, wires, exact matrix / Kraus bytes).  The digest is computed
        with :mod:`hashlib`, so it is identical across processes and
        Python sessions — this is the circuit's identity in the campaign
        result cache (:mod:`repro.exec.cache`).  Memoised per mutation
        counter, so repeated cache lookups on an unchanged circuit hash
        once.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        hasher = hashlib.sha256()
        hasher.update(f"dims={self.dims}".encode())
        for instruction in self._instructions:
            instruction.feed_fingerprint(hasher)
        digest = hasher.hexdigest()
        self._fingerprint = (self._version, digest)
        return digest

    def count_ops(self) -> dict[str, int]:
        """Histogram of instruction names."""
        out: dict[str, int] = {}
        for instruction in self._instructions:
            out[instruction.name] = out.get(instruction.name, 0) + 1
        return out

    def num_entangling(self) -> int:
        """Number of multi-wire unitaries (the dominant error source)."""
        return sum(1 for inst in self._instructions if inst.is_entangling())

    def depth(self) -> int:
        """Circuit depth counting each wire's busy slots (greedy ASAP)."""
        level = [0] * self.num_qudits
        depth = 0
        for instruction in self._instructions:
            if instruction.kind == "channel":
                continue  # noise markers do not consume a time slot
            start = max(level[q] for q in instruction.qudits)
            for q in instruction.qudits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the whole circuit (small registers only).

        Raises:
            CircuitError: if the circuit contains non-unitary instructions
                or the register dimension exceeds 4096.
        """
        if self.dim > 4096:
            raise CircuitError(
                f"register dimension {self.dim} too large for dense unitary"
            )
        from .statevector import embed_unitary  # local import avoids a cycle

        out = np.eye(self.dim, dtype=complex)
        for instruction in self._instructions:
            if instruction.kind != "unitary":
                raise CircuitError(
                    f"{instruction.name!r} is not unitary; cannot build matrix"
                )
            full = embed_unitary(instruction.matrix, self.dims, instruction.qudits)
            out = full @ out
        return out

    def wires_used(self) -> set[int]:
        """Set of wires touched by at least one instruction."""
        used: set[int] = set()
        for instruction in self._instructions:
            used.update(instruction.qudits)
        return used

    def interaction_pairs(self) -> dict[tuple[int, int], int]:
        """Count of two-wire unitaries per (sorted) wire pair.

        This is the *interaction graph* consumed by the noise-aware mapper.
        """
        out: dict[tuple[int, int], int] = {}
        for instruction in self._instructions:
            if instruction.is_entangling() and instruction.num_qudits == 2:
                pair = tuple(sorted(instruction.qudits))
                out[pair] = out.get(pair, 0) + 1
        return out
