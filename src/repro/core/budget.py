"""Thread-local error-budget accounts for truncating backends.

The MPS and LPDO states already *track* their truncation and
purification error (``state.truncation_error`` etc.), but those totals
live on state objects that die inside whatever driver loop consumed
them.  The executor's error-budget autopilot needs the totals *per
campaign point*, across every state the point's task created, without
threading a handle through every driver signature.

This module is that side channel: a stack of :class:`ErrorAccount`
objects.  ``truncated_svd`` call sites in :mod:`repro.core.mps` and
:mod:`repro.core.lpdo` report every discarded weight through
:func:`record_truncation` / :func:`record_purification`; both are
no-ops (one truthiness test) unless someone pushed an account via
:func:`scoped`.  The executor pushes one around each point execution
and ships the summary back over the result pipe, where it drives
mid-run cap escalation and ledger-based recalibration.

Accounts stack so that nested scopes (a campaign point that itself
runs a sub-campaign in-process) each see their own totals; a recording
updates *every* account on the stack.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "ErrorAccount",
    "record_purification",
    "record_truncation",
    "scoped",
]

#: Active accounts, innermost last.  Deliberately process-global rather
#: than thread-local: campaign points execute one-per-process in pool
#: workers, and the serial path runs points sequentially.
_STACK: list["ErrorAccount"] = []


class ErrorAccount:
    """Accumulated truncation/purification error over a scope.

    ``bond_truncations`` / ``kraus_truncations`` count *events* (every
    recorded SVD or Kraus recompression, including lossless ones), so
    an account can distinguish "no truncating backend ran" from "ran
    and stayed exact".  ``max_chi`` / ``max_kappa`` are the largest
    retained bond / Kraus dimensions observed — the cap escalation
    baseline.
    """

    __slots__ = (
        "truncation_error",
        "purification_error",
        "max_chi",
        "max_kappa",
        "bond_truncations",
        "kraus_truncations",
    )

    def __init__(self) -> None:
        self.truncation_error = 0.0
        self.purification_error = 0.0
        self.max_chi = 0
        self.max_kappa = 0
        self.bond_truncations = 0
        self.kraus_truncations = 0

    def summary(self) -> dict[str, Any] | None:
        """The account as a plain dict, or ``None`` if nothing recorded."""
        if not self.bond_truncations and not self.kraus_truncations:
            return None
        return {
            "truncation_error": self.truncation_error,
            "purification_error": self.purification_error,
            "max_chi": self.max_chi,
            "max_kappa": self.max_kappa,
            "bond_truncations": self.bond_truncations,
            "kraus_truncations": self.kraus_truncations,
        }

    def __repr__(self) -> str:
        return (
            f"ErrorAccount(truncation_error={self.truncation_error:.3e}, "
            f"purification_error={self.purification_error:.3e}, "
            f"max_chi={self.max_chi}, max_kappa={self.max_kappa})"
        )


@contextmanager
def scoped(account: ErrorAccount) -> Iterator[ErrorAccount]:
    """Push ``account`` for the duration of the ``with`` block."""
    _STACK.append(account)
    try:
        yield account
    finally:
        _STACK.remove(account)


def record_truncation(discarded: float, chi: int) -> None:
    """Report one bond truncation (``discarded`` weight, retained ``chi``)."""
    if not _STACK:
        return
    for account in _STACK:
        account.bond_truncations += 1
        account.truncation_error += discarded
        if chi > account.max_chi:
            account.max_chi = chi


def record_purification(discarded: float, kappa: int) -> None:
    """Report one Kraus-leg recompression (retained dimension ``kappa``)."""
    if not _STACK:
        return
    for account in _STACK:
        account.kraus_truncations += 1
        account.purification_error += discarded
        if kappa > account.max_kappa:
            account.max_kappa = kappa
