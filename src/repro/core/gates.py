"""Gate library for qudit and bosonic-mode registers.

Every function returns a dense complex ``numpy`` matrix.  Single-qudit gates
act on a ``d``-dimensional space; two-qudit gates on ``d1 * d2``.  Bosonic
gates (displacement, beam splitter, Kerr) are built from truncated ladder
operators — truncation to ``d`` Fock levels makes them *approximately*
unitary, with error controlled by the population near the truncation edge,
which is exactly the regime the paper's cavity qudits operate in.

Conventions:

* Weyl (generalised Pauli) operators: ``X|k> = |k+1 mod d>``,
  ``Z|k> = w^k |k>`` with ``w = exp(2 pi i / d)``.
* Two-qudit matrices are big-endian: the first qudit is the most
  significant digit, matching :mod:`repro.core.dims`.
* ``CSUM|a,b> = |a, b+a mod d>`` — the qudit Clifford extension of CNOT
  highlighted by the paper as the key engineering challenge.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.linalg import expm

from .exceptions import DimensionError

__all__ = [
    "identity",
    "weyl_x",
    "weyl_z",
    "weyl",
    "fourier",
    "parity_op",
    "level_rotation",
    "snap",
    "rz_level",
    "number_op",
    "annihilation",
    "creation",
    "position_quadrature",
    "momentum_quadrature",
    "displacement",
    "kerr",
    "beamsplitter",
    "cross_kerr",
    "csum",
    "csum_dagger",
    "controlled_phase",
    "controlled_unitary",
    "permutation_gate",
    "subspace_mixer_hamiltonian",
    "qudit_mixer",
    "complete_mixer_hamiltonian",
    "qudit_complete_mixer",
    "gell_mann_basis",
    "is_unitary",
    "is_hermitian",
]


def _check_dim(d: int) -> int:
    d = int(d)
    if d < 2:
        raise DimensionError(f"gate dimension must be >= 2, got {d}")
    return d


def identity(d: int) -> np.ndarray:
    """Identity on a ``d``-level qudit."""
    return np.eye(_check_dim(d), dtype=complex)


def weyl_x(d: int, power: int = 1) -> np.ndarray:
    """Cyclic shift ``X^power``: ``|k> -> |k + power mod d>``."""
    d = _check_dim(d)
    mat = np.zeros((d, d), dtype=complex)
    for k in range(d):
        mat[(k + power) % d, k] = 1.0
    return mat


def weyl_z(d: int, power: int = 1) -> np.ndarray:
    """Clock operator ``Z^power``: ``|k> -> w^{k*power} |k>``."""
    d = _check_dim(d)
    omega = np.exp(2j * np.pi / d)
    return np.diag(omega ** (power * np.arange(d)))


def weyl(d: int, a: int, b: int) -> np.ndarray:
    """Weyl displacement ``X^a Z^b`` — the qudit Pauli group generators.

    The ``d*d`` operators ``{X^a Z^b}`` form an orthogonal basis of the
    ``d x d`` matrices under the Hilbert-Schmidt inner product; qudit
    depolarising noise is uniform over the non-identity ones.
    """
    return weyl_x(d, a) @ weyl_z(d, b)


def fourier(d: int) -> np.ndarray:
    """Discrete Fourier gate, the qudit Hadamard: ``F|k> = d^-1/2 sum_j w^{jk}|j>``."""
    d = _check_dim(d)
    j, k = np.meshgrid(np.arange(d), np.arange(d), indexing="ij")
    return np.exp(2j * np.pi * j * k / d) / np.sqrt(d)


def parity_op(d: int) -> np.ndarray:
    """Photon-number parity ``(-1)^n`` — the observable behind Wigner readout."""
    d = _check_dim(d)
    return np.diag((-1.0 + 0j) ** np.arange(d))


def level_rotation(
    d: int, i: int, j: int, theta: float, phi: float = 0.0
) -> np.ndarray:
    """Givens rotation by ``theta`` in the ``(|i>, |j>)`` two-level subspace.

    The unitary acts as identity outside the subspace and as::

        [[cos(t/2),              -e^{-i phi} sin(t/2)],
         [e^{i phi} sin(t/2),     cos(t/2)           ]]

    on ``(|i>, |j>)``.  Sequences of these are universal for SU(d) and are
    the textbook decomposition target for qudit single-mode control.
    """
    d = _check_dim(d)
    if not (0 <= i < d and 0 <= j < d) or i == j:
        raise DimensionError(f"invalid rotation levels ({i}, {j}) for d={d}")
    mat = identity(d)
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    mat[i, i] = c
    mat[j, j] = c
    mat[i, j] = -np.exp(-1j * phi) * s
    mat[j, i] = np.exp(1j * phi) * s
    return mat


def snap(d: int, phases: Sequence[float]) -> np.ndarray:
    """Selective Number-dependent Arbitrary Phase gate.

    ``SNAP(theta)|n> = e^{i theta_n}|n>`` — the transmon-mediated phase gate
    that, together with displacements, is universal for a single cavity
    mode (paper §I).  ``phases`` may be shorter than ``d``; missing entries
    default to zero phase.
    """
    d = _check_dim(d)
    if len(phases) > d:
        raise DimensionError(f"{len(phases)} phases for a {d}-level qudit")
    full = np.zeros(d)
    full[: len(phases)] = np.asarray(phases, dtype=float)
    return np.diag(np.exp(1j * full))


def rz_level(d: int, k: int, theta: float) -> np.ndarray:
    """Phase ``e^{i theta}`` on the single level ``|k>`` (a 1-hot SNAP)."""
    d = _check_dim(d)
    if not 0 <= k < d:
        raise DimensionError(f"level {k} out of range for d={d}")
    phases = np.zeros(d)
    phases[k] = theta
    return snap(d, phases)


def number_op(d: int) -> np.ndarray:
    """Photon-number operator ``n = diag(0, 1, ..., d-1)``."""
    return np.diag(np.arange(_check_dim(d), dtype=float)).astype(complex)


def annihilation(d: int) -> np.ndarray:
    """Truncated ladder operator ``a|n> = sqrt(n)|n-1>``."""
    d = _check_dim(d)
    return np.diag(np.sqrt(np.arange(1, d, dtype=float)), k=1).astype(complex)


def creation(d: int) -> np.ndarray:
    """Truncated raising operator ``a† = annihilation(d).conj().T``."""
    return annihilation(d).conj().T


def position_quadrature(d: int) -> np.ndarray:
    """``x = (a + a†)/sqrt(2)`` in the truncated Fock space."""
    a = annihilation(d)
    return (a + a.conj().T) / np.sqrt(2.0)


def momentum_quadrature(d: int) -> np.ndarray:
    """``p = -i (a - a†)/sqrt(2)`` in the truncated Fock space."""
    a = annihilation(d)
    return -1j * (a - a.conj().T) / np.sqrt(2.0)


def displacement(d: int, alpha: complex) -> np.ndarray:
    """Truncated displacement ``D(alpha) = exp(alpha a† - alpha* a)``.

    Exactly unitary only as ``d -> inf``; for ``|alpha|^2 << d`` the
    truncation error is negligible, mirroring the physical requirement that
    cavity states stay well below the qudit cutoff.
    """
    a = annihilation(d)
    return expm(alpha * a.conj().T - np.conj(alpha) * a)


def kerr(d: int, chi_t: float) -> np.ndarray:
    """Self-Kerr evolution ``exp(-i chi_t n(n-1)/2)`` for angle ``chi_t``."""
    n = np.arange(_check_dim(d))
    return np.diag(np.exp(-1j * chi_t * n * (n - 1) / 2.0))


def beamsplitter(
    d1: int, d2: int, theta: float, phi: float = 0.0
) -> np.ndarray:
    """Two-mode beam-splitter ``exp(theta (e^{i phi} a† b - e^{-i phi} a b†))``.

    The native entangling interaction between cavity modes driven at their
    frequency difference (paper §I).  ``theta = pi/4`` is a 50:50 splitter;
    ``theta = pi/2`` swaps the modes (up to phases).
    """
    a = np.kron(annihilation(_check_dim(d1)), identity(d2))
    b = np.kron(identity(d1), annihilation(_check_dim(d2)))
    gen = np.exp(1j * phi) * a.conj().T @ b - np.exp(-1j * phi) * a @ b.conj().T
    return expm(theta * gen)


def cross_kerr(d1: int, d2: int, chi_t: float) -> np.ndarray:
    """Cross-Kerr evolution ``exp(-i chi_t n1 n2)`` — diagonal entangler."""
    n1 = np.arange(_check_dim(d1))
    n2 = np.arange(_check_dim(d2))
    phases = -chi_t * np.outer(n1, n2).ravel()
    return np.diag(np.exp(1j * phases))


def csum(d_control: int, d_target: int | None = None) -> np.ndarray:
    """``CSUM|a,b> = |a, b + a mod d_target>`` — qudit extension of CNOT.

    The paper singles this gate out (Table I, "main challenge") as the key
    entangling primitive for both the sQED simulation and the QAOA phase
    separator.  For mixed dimensions the shift is taken mod ``d_target``.
    """
    d_control = _check_dim(d_control)
    d_target = d_control if d_target is None else _check_dim(d_target)
    dim = d_control * d_target
    mat = np.zeros((dim, dim), dtype=complex)
    for a in range(d_control):
        for b in range(d_target):
            mat[a * d_target + (b + a) % d_target, a * d_target + b] = 1.0
    return mat


def csum_dagger(d_control: int, d_target: int | None = None) -> np.ndarray:
    """Inverse CSUM: ``|a,b> -> |a, b - a mod d_target>``."""
    return csum(d_control, d_target).conj().T


def controlled_phase(d1: int, d2: int, strength: float = 1.0) -> np.ndarray:
    """``CZ_d``-type gate ``|a,b> -> exp(2 pi i s a b / d2) |a,b>``.

    With ``strength = 1`` and ``d1 == d2 == d`` this is the qudit CZ, and
    ``(I ⊗ F†) CZ (I ⊗ F) = CSUM`` — the Fourier route to CSUM synthesis.
    """
    d1, d2 = _check_dim(d1), _check_dim(d2)
    a = np.arange(d1)
    b = np.arange(d2)
    phases = 2.0 * np.pi * strength * np.outer(a, b).ravel() / d2
    return np.diag(np.exp(1j * phases))


def controlled_unitary(
    d_control: int, unitary: np.ndarray, control_value: int
) -> np.ndarray:
    """Apply ``unitary`` to the target iff the control is ``|control_value>``."""
    d_control = _check_dim(d_control)
    if not 0 <= control_value < d_control:
        raise DimensionError(
            f"control value {control_value} out of range for d={d_control}"
        )
    unitary = np.asarray(unitary, dtype=complex)
    d_target = unitary.shape[0]
    if unitary.shape != (d_target, d_target):
        raise DimensionError("controlled_unitary requires a square matrix")
    mat = np.eye(d_control * d_target, dtype=complex)
    lo = control_value * d_target
    mat[lo : lo + d_target, lo : lo + d_target] = unitary
    return mat


def permutation_gate(perm: Sequence[int]) -> np.ndarray:
    """Basis-relabelling unitary ``|k> -> |perm[k]>``.

    NDAR's gauge remapping (paper §II.B) is exactly conjugation by these.
    """
    perm = list(perm)
    d = len(perm)
    if sorted(perm) != list(range(d)):
        raise DimensionError(f"{perm} is not a permutation of 0..{d - 1}")
    mat = np.zeros((d, d), dtype=complex)
    for k, target in enumerate(perm):
        mat[target, k] = 1.0
    return mat


def subspace_mixer_hamiltonian(d: int) -> np.ndarray:
    """Nearest-level hopping Hamiltonian ``sum_k |k><k+1| + h.c.``.

    The single-qudit mixing generator used for QAOA color mixing — it is the
    truncated quadrature ``x`` with unit matrix elements, reachable with
    sideband drives.
    """
    d = _check_dim(d)
    mat = np.zeros((d, d), dtype=complex)
    for k in range(d - 1):
        mat[k, k + 1] = 1.0
        mat[k + 1, k] = 1.0
    return mat


def qudit_mixer(d: int, beta: float) -> np.ndarray:
    """QAOA mixing unitary ``exp(-i beta H_mix)`` on one qudit."""
    return expm(-1j * beta * subspace_mixer_hamiltonian(d))


def complete_mixer_hamiltonian(d: int) -> np.ndarray:
    """All-to-all hopping ``sum_{k != l} |k><l|``.

    Unlike the nearest-level ladder this generator is invariant under any
    permutation of the levels, which makes qudit QAOA gauge-covariant
    under color relabellings — the property NDAR's remapping relies on.
    """
    d = _check_dim(d)
    return np.ones((d, d), dtype=complex) - np.eye(d, dtype=complex)


def qudit_complete_mixer(d: int, beta: float) -> np.ndarray:
    """Permutation-symmetric mixing unitary ``exp(-i beta (J - I))``."""
    return expm(-1j * beta * complete_mixer_hamiltonian(d))


def gell_mann_basis(d: int, *, include_identity: bool = False) -> list[np.ndarray]:
    """Generalised Gell-Mann matrices — a Hermitian operator basis of su(d).

    Returns ``d^2 - 1`` traceless Hermitian matrices (symmetric, antisymmetric
    and diagonal families), normalised so ``Tr(G_i G_j) = 2 delta_ij``.  Used
    by the qudit QRAC encoding (paper §II.B): problem variables are associated
    with expectation values of these observables.

    Args:
        d: qudit dimension.
        include_identity: prepend ``sqrt(2/d) I`` so the set is a complete
            orthogonal basis of Hermitian ``d x d`` matrices.
    """
    d = _check_dim(d)
    basis: list[np.ndarray] = []
    if include_identity:
        basis.append(np.sqrt(2.0 / d) * np.eye(d, dtype=complex))
    # Symmetric and antisymmetric off-diagonal families.
    for j in range(d):
        for k in range(j + 1, d):
            sym = np.zeros((d, d), dtype=complex)
            sym[j, k] = sym[k, j] = 1.0
            basis.append(sym)
            asym = np.zeros((d, d), dtype=complex)
            asym[j, k] = -1j
            asym[k, j] = 1j
            basis.append(asym)
    # Diagonal family.
    for level in range(1, d):
        diag = np.zeros(d, dtype=complex)
        diag[:level] = 1.0
        diag[level] = -float(level)
        diag *= np.sqrt(2.0 / (level * (level + 1)))
        basis.append(np.diag(diag))
    return basis


def is_unitary(mat: np.ndarray, atol: float = 1e-10) -> bool:
    """True if ``mat`` is unitary to absolute tolerance ``atol``."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    return np.allclose(mat.conj().T @ mat, np.eye(mat.shape[0]), atol=atol)


def is_hermitian(mat: np.ndarray, atol: float = 1e-10) -> bool:
    """True if ``mat`` is Hermitian to absolute tolerance ``atol``."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    return np.allclose(mat, mat.conj().T, atol=atol)
