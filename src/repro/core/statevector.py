"""Dense statevector simulation for mixed-dimension qudit registers.

The state is stored as a rank-``n`` tensor with per-axis sizes equal to the
qudit dimensions; gates are applied by :func:`numpy.tensordot` contraction
over the target axes, which costs ``O(D * d_gate)`` instead of the naive
``O(D^2)`` matrix product for register dimension ``D``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .circuit import QuditCircuit
from .dims import digits_to_index, index_to_digits, total_dim, validate_dims
from .exceptions import DimensionError, SimulationError

__all__ = ["Statevector", "embed_unitary", "apply_matrix"]


def apply_matrix(
    tensor: np.ndarray,
    matrix: np.ndarray,
    dims: Sequence[int],
    targets: Sequence[int],
) -> np.ndarray:
    """Apply ``matrix`` to the ``targets`` axes of a state tensor.

    Args:
        tensor: array whose first ``len(dims)`` axes are the register; any
            trailing axes are treated as batch dimensions.
        matrix: operator of dimension ``prod(dims[t] for t in targets)``.
        dims: register dimensions.
        targets: register axes the operator acts on, in matrix tensor order.

    Returns:
        The transformed tensor, same shape as the input.
    """
    dims = tuple(dims)
    targets = list(targets)
    n = len(dims)
    batch_ndim = tensor.ndim - n
    gate_dims = [dims[t] for t in targets]
    gate_tensor = matrix.reshape(gate_dims + gate_dims)
    # Contract matrix "input" axes with the state's target axes.
    contracted = np.tensordot(
        gate_tensor, tensor, axes=(list(range(len(targets), 2 * len(targets))), targets)
    )
    # tensordot output axis order: gate outputs, untouched register axes
    # (original order), then batch axes.  Restore the original layout.
    remaining = [ax for ax in range(n) if ax not in targets]
    order = [0] * (n + batch_ndim)
    for out_pos, axis in enumerate(targets):
        order[axis] = out_pos
    for out_pos, axis in enumerate(remaining, start=len(targets)):
        order[axis] = out_pos
    for b in range(batch_ndim):
        order[n + b] = n + b
    return np.transpose(contracted, order)


def embed_unitary(
    matrix: np.ndarray, dims: Sequence[int], targets: Sequence[int]
) -> np.ndarray:
    """Embed a local operator into the full register as a dense matrix.

    Intended for small registers (matrix construction, tests); simulators use
    :func:`apply_matrix` instead.
    """
    dims = validate_dims(dims)
    dim = total_dim(dims)
    eye = np.eye(dim, dtype=complex)
    columns = apply_matrix(
        eye.reshape(dims + (dim,)),
        np.asarray(matrix, dtype=complex),
        dims,
        targets,
    )
    return columns.reshape(dim, dim)


class Statevector:
    """A pure state of a mixed-dimension qudit register.

    Example:
        >>> sv = Statevector.zero([3, 3])
        >>> qc = QuditCircuit([3, 3]); qc.fourier(0); qc.csum(0, 1)
        >>> sv = sv.evolve(qc)
        >>> sv.probabilities().round(3)[[0, 4, 8]]
        array([0.333, 0.333, 0.333])
    """

    def __init__(self, data: np.ndarray, dims: Sequence[int]) -> None:
        self.dims = validate_dims(dims)
        data = np.asarray(data, dtype=complex)
        dim = total_dim(self.dims)
        if data.size != dim:
            raise DimensionError(
                f"state has {data.size} amplitudes, register needs {dim}"
            )
        self._tensor = data.reshape(self.dims)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, dims: Sequence[int]) -> "Statevector":
        """The all-|0> product state."""
        dims = validate_dims(dims)
        data = np.zeros(total_dim(dims), dtype=complex)
        data[0] = 1.0
        return cls(data, dims)

    @classmethod
    def basis(cls, dims: Sequence[int], digits: Sequence[int]) -> "Statevector":
        """Computational basis state ``|digits>``."""
        dims = validate_dims(dims)
        data = np.zeros(total_dim(dims), dtype=complex)
        data[digits_to_index(digits, dims)] = 1.0
        return cls(data, dims)

    @classmethod
    def uniform(cls, dims: Sequence[int]) -> "Statevector":
        """Equal superposition over all basis states."""
        dims = validate_dims(dims)
        dim = total_dim(dims)
        return cls(np.full(dim, 1.0 / np.sqrt(dim), dtype=complex), dims)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """Flat amplitude vector (copy-free view)."""
        return self._tensor.reshape(-1)

    @property
    def tensor(self) -> np.ndarray:
        """Rank-n tensor view of the amplitudes."""
        return self._tensor

    @property
    def dim(self) -> int:
        """Total Hilbert-space dimension."""
        return total_dim(self.dims)

    def copy(self) -> "Statevector":
        """Deep copy."""
        return Statevector(self.vector.copy(), self.dims)

    def norm(self) -> float:
        """2-norm of the amplitude vector."""
        return float(np.linalg.norm(self.vector))

    def normalized(self) -> "Statevector":
        """Return the state rescaled to unit norm."""
        norm = self.norm()
        if norm < 1e-300:
            raise SimulationError("cannot normalise a zero state")
        return Statevector(self.vector / norm, self.dims)

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply(
        self, matrix: np.ndarray, targets: int | Sequence[int]
    ) -> "Statevector":
        """Apply a unitary (or general matrix) to the target wires."""
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        tensor = apply_matrix(
            self._tensor, np.asarray(matrix, dtype=complex), self.dims, targets
        )
        return Statevector(tensor.reshape(-1), self.dims)

    def evolve(self, circuit: QuditCircuit) -> "Statevector":
        """Run a (noise-free) circuit; channels/measure markers are rejected.

        Raises:
            SimulationError: on channel instructions — use the density-matrix
                or trajectory simulators for noisy circuits.
        """
        if circuit.dims != self.dims:
            raise DimensionError(
                f"circuit dims {circuit.dims} != state dims {self.dims}"
            )
        state = self
        for instruction in circuit:
            if instruction.kind == "unitary":
                state = state.apply(instruction.matrix, instruction.qudits)
            elif instruction.kind == "measure":
                continue  # terminal measurement is implicit in sampling
            else:
                raise SimulationError(
                    f"Statevector cannot execute {instruction.kind!r} "
                    f"instruction {instruction.name!r}"
                )
        return state

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Born-rule probabilities over the computational basis."""
        return np.abs(self.vector) ** 2

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> complex:
        """Expectation value ``<psi|O|psi>`` of a (local) operator."""
        if targets is None:
            targets = tuple(range(len(self.dims)))
        transformed = self.apply(operator, targets)
        return complex(np.vdot(self.vector, transformed.vector))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        if other.dims != self.dims:
            raise DimensionError("fidelity requires matching register dims")
        return float(np.abs(np.vdot(self.vector, other.vector)) ** 2)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Sample ``shots`` computational-basis outcomes.

        Returns:
            Mapping from digit tuples to observed counts.
        """
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        probs = probs / probs.sum()
        outcomes = rng.multinomial(shots, probs)
        counts: dict[tuple[int, ...], int] = {}
        for index in np.nonzero(outcomes)[0]:
            counts[index_to_digits(int(index), self.dims)] = int(outcomes[index])
        return counts

    def measure_qudit(
        self, qudit: int, rng: np.random.Generator | None = None
    ) -> tuple[int, "Statevector"]:
        """Projectively measure one wire; return (outcome, collapsed state)."""
        rng = rng or np.random.default_rng()
        axis = int(qudit)
        marginal = np.abs(self._tensor) ** 2
        sum_axes = tuple(ax for ax in range(len(self.dims)) if ax != axis)
        probs = marginal.sum(axis=sum_axes)
        probs = probs / probs.sum()
        outcome = int(rng.choice(len(probs), p=probs))
        projector = np.zeros((self.dims[axis], self.dims[axis]), dtype=complex)
        projector[outcome, outcome] = 1.0
        collapsed = self.apply(projector, axis)
        return outcome, collapsed.normalized()

    def partial_trace(self, keep: Sequence[int]) -> np.ndarray:
        """Reduced density matrix over the ``keep`` wires (in given order)."""
        keep = list(keep)
        others = [ax for ax in range(len(self.dims)) if ax not in keep]
        perm = keep + others
        tensor = np.transpose(self._tensor, perm)
        d_keep = int(np.prod([self.dims[a] for a in keep])) if keep else 1
        d_rest = int(np.prod([self.dims[a] for a in others])) if others else 1
        mat = tensor.reshape(d_keep, d_rest)
        return mat @ mat.conj().T
