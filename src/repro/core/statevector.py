"""Dense statevector simulation for mixed-dimension qudit registers.

The state is stored as a rank-``n`` tensor with per-axis sizes equal to the
qudit dimensions.  Gate application dispatches on the operator's structure
(see :mod:`repro.core.structure`):

* **diagonal** gates (Weyl ``Z``, SNAP, Kerr, controlled-phase) are applied
  as an ``O(D)`` broadcast multiply;
* **permutation** gates (Weyl ``X``, CSUM, NDAR relabellings) as an ``O(D)``
  index gather;
* everything else falls back to a matrix contraction over the target axes,
  costing ``O(D * d_gate)`` instead of the naive ``O(D^2)`` matrix product.

All kernels treat axes beyond the register rank as **batch axes**, which is
how the batched trajectory engine evolves hundreds of noisy trajectories
with one kernel invocation per gate.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .circuit import QuditCircuit
from .dims import digits_to_index, index_to_digits, strides, total_dim, validate_dims
from .exceptions import DimensionError, SimulationError
from .rng import ensure_rng, sanitize_probabilities
from .structure import DIAGONAL, PERMUTATION, GateStructure, classify_gate

__all__ = [
    "Statevector",
    "embed_unitary",
    "apply_matrix",
    "apply_matrix_dense",
    "broadcast_over_targets",
    "fused_instructions",
]


def apply_matrix_dense(
    tensor: np.ndarray,
    matrix: np.ndarray,
    dims: Sequence[int],
    targets: Sequence[int],
) -> np.ndarray:
    """Reference dense path: ``tensordot`` contraction over the target axes.

    This is the seed implementation, kept verbatim as the correctness
    reference for the structured fast paths (tests assert agreement to
    1e-12) and as the benchmark baseline.
    """
    dims = tuple(dims)
    targets = list(targets)
    n = len(dims)
    batch_ndim = tensor.ndim - n
    gate_dims = [dims[t] for t in targets]
    gate_tensor = matrix.reshape(gate_dims + gate_dims)
    # Contract matrix "input" axes with the state's target axes.
    contracted = np.tensordot(
        gate_tensor, tensor, axes=(list(range(len(targets), 2 * len(targets))), targets)
    )
    # tensordot output axis order: gate outputs, untouched register axes
    # (original order), then batch axes.  Restore the original layout.
    remaining = [ax for ax in range(n) if ax not in targets]
    order = [0] * (n + batch_ndim)
    for out_pos, axis in enumerate(targets):
        order[axis] = out_pos
    for out_pos, axis in enumerate(remaining, start=len(targets)):
        order[axis] = out_pos
    for b in range(batch_ndim):
        order[n + b] = n + b
    return np.transpose(contracted, order)


def broadcast_over_targets(
    flat_values: np.ndarray, dims: tuple[int, ...], targets: list[int]
) -> np.ndarray:
    """Reshape per-gate-level values to broadcast against a register tensor.

    ``flat_values`` is indexed by the joint target level in matrix tensor
    order; the result has the register's rank with size-1 axes everywhere
    except the target axes.
    """
    gate_dims = [dims[t] for t in targets]
    value_tensor = flat_values.reshape(gate_dims)
    if len(targets) > 1:
        # Reorder the value tensor's axes to ascending register order so a
        # plain reshape lines each one up with its target axis.
        order = sorted(range(len(targets)), key=targets.__getitem__)
        value_tensor = np.transpose(value_tensor, order)
    shape = [1] * len(dims)
    for t in targets:
        shape[t] = dims[t]
    return np.ascontiguousarray(value_tensor.reshape(shape))


def _apply_diagonal(
    tensor: np.ndarray,
    structure: GateStructure,
    dims: tuple[int, ...],
    targets: list[int],
) -> np.ndarray:
    """Elementwise fast path: multiply by the diagonal broadcast over targets."""
    key = (dims, tuple(targets))
    broadcast = structure.plans.get(key)
    if broadcast is None:
        broadcast = broadcast_over_targets(structure.diag, dims, targets)
        structure.plans[key] = broadcast
    batch_ndim = tensor.ndim - len(dims)
    return tensor * broadcast.reshape(broadcast.shape + (1,) * batch_ndim)


def _permutation_plan(
    structure: GateStructure, dims: tuple[int, ...], targets: list[int]
) -> tuple[np.ndarray, np.ndarray | None]:
    """Precompute the full-register flat gather map (and value vector).

    ``out_flat[i] = values_flat[i] * in_flat[map[i]]`` — one fancy-indexed
    gather per application, no axis moves or interim copies.
    """
    n = len(dims)
    gate_dims = [dims[t] for t in targets]
    place = strides(dims)
    gather = np.zeros(dims, dtype=np.intp)
    for ax in range(n):
        if ax in targets:
            continue
        shape = [1] * n
        shape[ax] = dims[ax]
        gather += (np.arange(dims[ax], dtype=np.intp) * place[ax]).reshape(shape)
    # Joint source contribution of the target axes, indexed by the *output*
    # joint level in matrix tensor order.
    source_digits = np.unravel_index(structure.source, gate_dims)
    joint = np.zeros(structure.dim, dtype=np.intp)
    for i, t in enumerate(targets):
        joint += source_digits[i].astype(np.intp) * place[t]
    gather = (gather + broadcast_over_targets(joint, dims, targets)).reshape(-1)
    values = None
    if structure.values is not None:
        values = np.ascontiguousarray(
            np.broadcast_to(
                broadcast_over_targets(structure.values, dims, targets), dims
            ).reshape(-1)
        )
    return gather, values


def _apply_permutation(
    tensor: np.ndarray,
    structure: GateStructure,
    dims: tuple[int, ...],
    targets: list[int],
) -> np.ndarray:
    """Gather fast path: ``out[r] = values[r] * in[source[r]]`` on target axes."""
    if len(targets) == 1:
        # Single wire: np.take copies whole blocks per level — far cheaper
        # than an elementwise flat gather.
        axis = targets[0]
        out = np.take(tensor, structure.source, axis=axis)
        if structure.values is not None:
            shape = [1] * tensor.ndim
            shape[axis] = structure.dim
            out *= structure.values.reshape(shape)
        return out
    key = (dims, tuple(targets))
    plan = structure.plans.get(key)
    if plan is None:
        plan = _permutation_plan(structure, dims, targets)
        structure.plans[key] = plan
    gather, values = plan
    dim = gather.size
    flat = tensor.reshape(dim, -1)
    out = flat[gather]
    if values is not None:
        out *= values[:, None]
    return out.reshape(tensor.shape)


def _apply_dense_contiguous(
    tensor: np.ndarray,
    matrix: np.ndarray,
    dims: tuple[int, ...],
    targets: list[int],
) -> np.ndarray | None:
    """Dense fast path for an ascending contiguous run of target axes.

    Reshapes the state to ``(left, d_gate, right)`` — a view, no transpose
    — and applies one broadcasted matmul, leaving the output contiguous.
    Returns ``None`` when the targets are not such a run (caller falls back
    to the tensordot reference).
    """
    k = len(targets)
    first = targets[0]
    if list(targets) != list(range(first, first + k)):
        return None
    left = 1
    for d in dims[:first]:
        left *= d
    gate_dim = matrix.shape[0]
    view = tensor.reshape(left, gate_dim, -1)
    return np.matmul(matrix, view).reshape(tensor.shape)


def apply_matrix(
    tensor: np.ndarray,
    matrix: np.ndarray,
    dims: Sequence[int],
    targets: Sequence[int],
    structure: GateStructure | None = None,
) -> np.ndarray:
    """Apply ``matrix`` to the ``targets`` axes of a state tensor.

    Dispatches to the diagonal / permutation fast path when the operator's
    structure allows, otherwise contracts densely.  All paths agree with
    :func:`apply_matrix_dense` to floating-point precision.

    Args:
        tensor: array whose first ``len(dims)`` axes are the register; any
            trailing axes are treated as batch dimensions.
        matrix: operator of dimension ``prod(dims[t] for t in targets)``.
        dims: register dimensions.
        targets: register axes the operator acts on, in matrix tensor order.
        structure: optional precomputed :func:`~repro.core.structure.classify_gate`
            result (circuits cache one per instruction); classified on the
            fly when omitted.

    Returns:
        The transformed tensor, same shape as the input.
    """
    dims = tuple(dims)
    targets = list(targets)
    if structure is None:
        structure = classify_gate(matrix)
    if structure.kind == DIAGONAL:
        return _apply_diagonal(tensor, structure, dims, targets)
    if structure.kind == PERMUTATION:
        return _apply_permutation(tensor, structure, dims, targets)
    out = _apply_dense_contiguous(tensor, matrix, dims, targets)
    if out is not None:
        return out
    return apply_matrix_dense(tensor, matrix, dims, targets)


def _flush_run(plan: list, run: list) -> None:
    """Emit a pending same-wire run, fusing it when longer than one gate."""
    if not run:
        return
    if len(run) == 1:
        plan.append(run[0])
    else:
        from .circuit import Instruction  # local import avoids a cycle

        fused = run[0].matrix
        for instruction in run[1:]:
            fused = instruction.matrix @ fused
        plan.append(
            Instruction(
                name=f"fused[{len(run)}]",
                kind="unitary",
                qudits=run[0].qudits,
                matrix=fused,
                params={"fused": tuple(ins.name for ins in run)},
            )
        )
    run.clear()


def fused_instructions(circuit: QuditCircuit) -> tuple:
    """Instruction stream with runs of same-wire single-qudit unitaries fused.

    Consecutive single-wire unitaries on the *same* wire collapse into one
    ``d x d`` product applied with a single kernel call — a run of dense
    Givens/mixer pulses costs one contraction instead of many, and a
    diagonal-times-permutation run collapses to one monomial gather.  Any
    intervening instruction (another wire, a channel, a measurement) breaks
    the run, so ordering semantics are preserved exactly.

    The plan is cached on the circuit keyed by its mutation counter (bumped
    by every mutator — ``append``, ``replace_instruction``), so repeatedly
    evolving the same circuit — Trotter step loops — fuses once, while
    *any* mutation invalidates the cache.  A length-based key would serve a
    stale plan after a length-preserving instruction replacement.
    """
    cached = getattr(circuit, "_fused_plan", None)
    version = getattr(circuit, "_version", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    plan: list = []
    run: list = []
    for instruction in circuit:
        if instruction.kind == "unitary" and instruction.num_qudits == 1:
            if run and run[-1].qudits != instruction.qudits:
                _flush_run(plan, run)
            run.append(instruction)
            continue
        _flush_run(plan, run)
        plan.append(instruction)
    _flush_run(plan, run)
    out = tuple(plan)
    circuit._fused_plan = (version, out)
    return out


def embed_unitary(
    matrix: np.ndarray, dims: Sequence[int], targets: Sequence[int]
) -> np.ndarray:
    """Embed a local operator into the full register as a dense matrix.

    Intended for small registers (matrix construction, tests); simulators use
    :func:`apply_matrix` instead.
    """
    dims = validate_dims(dims)
    dim = total_dim(dims)
    eye = np.eye(dim, dtype=complex)
    columns = apply_matrix(
        eye.reshape(dims + (dim,)),
        np.asarray(matrix, dtype=complex),
        dims,
        targets,
    )
    return columns.reshape(dim, dim)


class Statevector:
    """A pure state of a mixed-dimension qudit register.

    Example:
        >>> sv = Statevector.zero([3, 3])
        >>> qc = QuditCircuit([3, 3]); qc.fourier(0); qc.csum(0, 1)
        >>> sv = sv.evolve(qc)
        >>> sv.probabilities().round(3)[[0, 4, 8]]
        array([0.333, 0.333, 0.333])
    """

    def __init__(self, data: np.ndarray, dims: Sequence[int]) -> None:
        self.dims = validate_dims(dims)
        data = np.asarray(data, dtype=complex)
        dim = total_dim(self.dims)
        if data.size != dim:
            raise DimensionError(
                f"state has {data.size} amplitudes, register needs {dim}"
            )
        self._tensor = data.reshape(self.dims)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, dims: Sequence[int]) -> "Statevector":
        """The all-|0> product state."""
        dims = validate_dims(dims)
        data = np.zeros(total_dim(dims), dtype=complex)
        data[0] = 1.0
        return cls(data, dims)

    @classmethod
    def basis(cls, dims: Sequence[int], digits: Sequence[int]) -> "Statevector":
        """Computational basis state ``|digits>``."""
        dims = validate_dims(dims)
        data = np.zeros(total_dim(dims), dtype=complex)
        data[digits_to_index(digits, dims)] = 1.0
        return cls(data, dims)

    @classmethod
    def uniform(cls, dims: Sequence[int]) -> "Statevector":
        """Equal superposition over all basis states."""
        dims = validate_dims(dims)
        dim = total_dim(dims)
        return cls(np.full(dim, 1.0 / np.sqrt(dim), dtype=complex), dims)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """Flat amplitude vector (copy-free view)."""
        return self._tensor.reshape(-1)

    @property
    def tensor(self) -> np.ndarray:
        """Rank-n tensor view of the amplitudes."""
        return self._tensor

    @property
    def dim(self) -> int:
        """Total Hilbert-space dimension."""
        return total_dim(self.dims)

    def copy(self) -> "Statevector":
        """Deep copy."""
        return Statevector(self.vector.copy(), self.dims)

    def norm(self) -> float:
        """2-norm of the amplitude vector."""
        return float(np.linalg.norm(self.vector))

    def normalized(self) -> "Statevector":
        """Return the state rescaled to unit norm."""
        norm = self.norm()
        if norm < 1e-300:
            raise SimulationError("cannot normalise a zero state")
        return Statevector(self.vector / norm, self.dims)

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply(
        self,
        matrix: np.ndarray,
        targets: int | Sequence[int],
        structure: GateStructure | None = None,
    ) -> "Statevector":
        """Apply a unitary (or general matrix) to the target wires.

        Args:
            matrix: operator over the target wires.
            targets: wire index or indices.
            structure: optional precomputed gate structure (fast-path hint).
        """
        if isinstance(targets, (int, np.integer)):
            targets = (int(targets),)
        matrix = np.asarray(matrix, dtype=complex)
        if _metrics.enabled or _tracing.enabled:
            if structure is None:
                structure = classify_gate(matrix)
            _metrics.inc("gate_applies", backend="statevector", kind=structure.kind)
            with _tracing.span(
                "gate_apply", backend="statevector", kind=structure.kind
            ):
                tensor = apply_matrix(
                    self._tensor, matrix, self.dims, targets, structure=structure
                )
        else:
            tensor = apply_matrix(
                self._tensor, matrix, self.dims, targets, structure=structure
            )
        return Statevector(tensor.reshape(-1), self.dims)

    def evolve(self, circuit: QuditCircuit) -> "Statevector":
        """Run a (noise-free) circuit; channels/measure markers are rejected.

        Runs of consecutive single-qudit unitaries on the same wire are
        fused into one matrix before application (see
        :func:`fused_instructions`), and every instruction is dispatched
        through its cached gate structure, so repeated steps (Trotter
        circuits) classify each distinct gate matrix only once.

        Raises:
            SimulationError: on channel instructions — use the density-matrix
                or trajectory simulators for noisy circuits.
        """
        if circuit.dims != self.dims:
            raise DimensionError(
                f"circuit dims {circuit.dims} != state dims {self.dims}"
            )
        state = self
        for instruction in fused_instructions(circuit):
            if instruction.kind == "unitary":
                state = state.apply(
                    instruction.matrix,
                    instruction.qudits,
                    structure=instruction.structure(),
                )
            elif instruction.kind == "measure":
                continue  # terminal measurement is implicit in sampling
            else:
                raise SimulationError(
                    f"Statevector cannot execute {instruction.kind!r} "
                    f"instruction {instruction.name!r}"
                )
        return state

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Born-rule probabilities over the computational basis."""
        return np.abs(self.vector) ** 2

    def expectation(
        self, operator: np.ndarray, targets: int | Sequence[int] | None = None
    ) -> complex:
        """Expectation value ``<psi|O|psi>`` of a (local) operator."""
        if targets is None:
            targets = tuple(range(len(self.dims)))
        transformed = self.apply(operator, targets)
        return complex(np.vdot(self.vector, transformed.vector))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        if other.dims != self.dims:
            raise DimensionError("fidelity requires matching register dims")
        return float(np.abs(np.vdot(self.vector, other.vector)) ** 2)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Sample ``shots`` computational-basis outcomes.

        Args:
            shots: number of outcomes to draw.
            rng: generator, integer seed, or ``None`` for the shared global
                generator (see :mod:`repro.core.rng`).

        Returns:
            Mapping from digit tuples to observed counts.
        """
        rng = ensure_rng(rng)
        probs = sanitize_probabilities(self.probabilities())
        outcomes = rng.multinomial(shots, probs)
        counts: dict[tuple[int, ...], int] = {}
        for index in np.nonzero(outcomes)[0]:
            counts[index_to_digits(int(index), self.dims)] = int(outcomes[index])
        return counts

    def measure_qudit(
        self, qudit: int, rng: np.random.Generator | int | None = None
    ) -> tuple[int, "Statevector"]:
        """Projectively measure one wire; return (outcome, collapsed state).

        Collapse zeroes the non-outcome slices of the wire's axis directly
        — no projector matrix is built and no gate contraction is paid.
        """
        rng = ensure_rng(rng)
        axis = int(qudit)
        marginal = np.abs(self._tensor) ** 2
        sum_axes = tuple(ax for ax in range(len(self.dims)) if ax != axis)
        probs = sanitize_probabilities(marginal.sum(axis=sum_axes))
        outcome = int(rng.choice(len(probs), p=probs))
        collapsed_tensor = np.zeros_like(self._tensor)
        keep = (slice(None),) * axis + (outcome,)
        collapsed_tensor[keep] = self._tensor[keep]
        collapsed = Statevector(collapsed_tensor.reshape(-1), self.dims)
        return outcome, collapsed.normalized()

    def partial_trace(self, keep: Sequence[int]) -> np.ndarray:
        """Reduced density matrix over the ``keep`` wires (in given order)."""
        keep = list(keep)
        others = [ax for ax in range(len(self.dims)) if ax not in keep]
        perm = keep + others
        tensor = np.transpose(self._tensor, perm)
        d_keep = int(np.prod([self.dims[a] for a in keep])) if keep else 1
        d_rest = int(np.prod([self.dims[a] for a in others])) if others else 1
        mat = tensor.reshape(d_keep, d_rest)
        return mat @ mat.conj().T
