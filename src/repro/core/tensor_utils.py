"""Shared canonical-form and truncation kernels for tensor-network states.

:class:`~repro.core.mps.MPSState` stores rank-3 site tensors
``(chi_l, d, chi_r)``; :class:`~repro.core.lpdo.LPDOState` stores rank-4
tensors ``(chi_l, d, kappa, chi_r)`` — an MPS *is* an LPDO with every Kraus
leg of size 1.  Both classes previously carried their own copies of the QR
orthogonalisation sweeps and the truncated-SVD bond split, differing only
in how many middle legs sit between the two bonds.  The helpers here work
on the *joint* middle leg (everything between the first and last axis is
flattened for the factorisation and restored afterwards), so one
implementation serves both representations — and any future tensor with
extra per-site legs.

All helpers mutate the caller's tensor list in place (matching the
previous private methods) and never touch the canonical-interval
bookkeeping, which stays in the owning class.
"""

from __future__ import annotations

import numpy as np

from .exceptions import SimulationError

__all__ = ["qr_step_right", "qr_step_left", "truncated_svd"]


def qr_step_right(tensors: list[np.ndarray], i: int) -> None:
    """Left-orthogonalise site ``i``, absorbing the QR remainder rightward.

    Works for any site-tensor rank >= 3: the leading bond and all middle
    legs are flattened into the QR's row space, so the joint
    ``(physical, Kraus, ...)`` leg is orthogonalised as one unit.
    """
    t = tensors[i]
    l, r = t.shape[0], t.shape[-1]
    mid = t.shape[1:-1]
    q, rem = np.linalg.qr(t.reshape(l * int(np.prod(mid)), r))
    tensors[i] = q.reshape((l,) + mid + (-1,))
    tensors[i + 1] = np.tensordot(rem, tensors[i + 1], axes=(1, 0))


def qr_step_left(tensors: list[np.ndarray], i: int) -> None:
    """Right-orthogonalise site ``i``, absorbing the QR remainder leftward."""
    t = tensors[i]
    left = t.shape[0]
    mid = t.shape[1:-1]
    r = t.shape[-1]
    q, rem = np.linalg.qr(t.reshape(left, int(np.prod(mid)) * r).conj().T)
    tensors[i] = q.conj().T.reshape((-1,) + mid + (r,))
    prev = tensors[i - 1]
    tensors[i - 1] = np.tensordot(prev, rem.conj(), axes=(prev.ndim - 1, 1))


def truncated_svd(
    mat: np.ndarray,
    *,
    max_keep: int | None,
    rel_tol: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Truncated SVD split with norm-preserving rescaling.

    Keeps at most ``max_keep`` singular values above ``rel_tol * s_max``
    (always at least one), rescales the kept spectrum so the Frobenius
    norm — the state norm / trace for MPS / LPDO splits — is preserved,
    and reports the discarded weight fraction for the caller's truncation
    account.

    Args:
        mat: the flattened theta matrix to split.
        max_keep: cap on the kept rank (``None`` = no cap).
        rel_tol: relative singular-value cutoff.

    Returns:
        ``(left, right, discarded)`` with ``left`` the kept columns of
        ``U``, ``right`` the kept rows of ``S @ Vh`` (spectrum rescaled),
        and ``discarded`` the weight fraction lost (0.0 when the split is
        exact up to ``rel_tol``).
    """
    u, s, vh = np.linalg.svd(mat, full_matrices=False)
    if s[0] <= 0:
        raise SimulationError("cannot split a zero theta tensor")
    keep = s > rel_tol * s[0]
    if max_keep is not None:
        keep[max_keep:] = False
    keep[0] = True  # always keep at least one state
    total = float(np.sum(s**2))
    kept = float(np.sum(s[keep] ** 2))
    discarded = 1.0 - kept / total
    s = s[keep] * np.sqrt(total / kept)
    return u[:, keep], s[:, None] * vh[keep], discarded
