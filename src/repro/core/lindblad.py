"""Lindblad master-equation integration for continuously driven systems.

The analog quantum-reservoir experiments (paper §II.C) evolve dissipatively
coupled cavity modes under::

    d rho / dt = -i [H(t), rho] + sum_k ( L_k rho L_k† - {L_k† L_k, rho}/2 )

For time-independent generators we exponentiate the vectorised superoperator
once (``scipy.linalg.expm``) and reuse it every step — by far the fastest
option at reservoir sizes (D <= ~100).  A piecewise-constant driver handles
time-dependent Hamiltonians (input-encoding displacements) by rebuilding the
propagator per segment, with an LRU-style cache keyed on the drive value.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.linalg import expm

from .exceptions import DimensionError, SimulationError

__all__ = [
    "liouvillian",
    "vectorize_density",
    "unvectorize_density",
    "LindbladPropagator",
    "evolve_lindblad",
]


def liouvillian(
    hamiltonian: np.ndarray, collapse_ops: Sequence[np.ndarray]
) -> np.ndarray:
    """Vectorised Lindblad generator (column-stacking convention).

    With ``vec(rho)`` stacking columns, ``vec(A rho B) = (B^T ⊗ A) vec(rho)``.

    The dissipator is built for the *whole* collapse-operator family at
    once: the operators are stacked into one ``(m, D, D)`` tensor, the
    jump part ``sum_k conj(L_k) ⊗ L_k`` is a single einsum over the stack,
    and the anticommutator part needs only the summed Gram matrix
    ``G = sum_k L_k† L_k`` — the same family-stacking that batches the
    density backend's Kraus loop, replacing ``3m`` Kronecker products with
    two stacked contractions.

    Args:
        hamiltonian: Hermitian ``D x D`` matrix.
        collapse_ops: Lindblad jump operators ``L_k`` (rates absorbed into
            the operators, i.e. pass ``sqrt(kappa) a``).

    Returns:
        ``D^2 x D^2`` complex generator ``L`` with ``d vec(rho)/dt = L vec(rho)``.
    """
    ham = np.asarray(hamiltonian, dtype=complex)
    dim = ham.shape[0]
    if ham.shape != (dim, dim):
        raise DimensionError("Hamiltonian must be square")
    eye = np.eye(dim, dtype=complex)
    gen = -1j * (np.kron(eye, ham) - np.kron(ham.T, eye))
    if not len(collapse_ops):
        return gen
    stack = np.stack([np.asarray(op, dtype=complex) for op in collapse_ops])
    if stack.shape[1:] != (dim, dim):
        raise DimensionError("collapse operator dimension mismatch")
    # kron(conj(L_k), L_k)[(i, j), (p, q)] = conj(L_k)[i, p] L_k[j, q],
    # summed over the family in one contraction.
    gen += np.einsum("mip,mjq->ijpq", stack.conj(), stack).reshape(
        dim * dim, dim * dim
    )
    gram = np.einsum("mij,mik->jk", stack.conj(), stack)
    gen -= 0.5 * (np.kron(eye, gram) + np.kron(gram.T, eye))
    return gen


def _liouvillian_loop(
    hamiltonian: np.ndarray, collapse_ops: Sequence[np.ndarray]
) -> np.ndarray:
    """Per-operator reference implementation of :func:`liouvillian`.

    Kept as the regression baseline for the batched dissipator build (see
    ``tests/core/test_lindblad.py``); not used on any hot path.
    """
    ham = np.asarray(hamiltonian, dtype=complex)
    dim = ham.shape[0]
    if ham.shape != (dim, dim):
        raise DimensionError("Hamiltonian must be square")
    eye = np.eye(dim, dtype=complex)
    gen = -1j * (np.kron(eye, ham) - np.kron(ham.T, eye))
    for op in collapse_ops:
        lop = np.asarray(op, dtype=complex)
        if lop.shape != (dim, dim):
            raise DimensionError("collapse operator dimension mismatch")
        anticomm = lop.conj().T @ lop
        gen += np.kron(lop.conj(), lop)
        gen -= 0.5 * (np.kron(eye, anticomm) + np.kron(anticomm.T, eye))
    return gen


def vectorize_density(rho: np.ndarray) -> np.ndarray:
    """Column-stacking vectorisation ``vec(rho)``."""
    return np.asarray(rho, dtype=complex).reshape(-1, order="F")


def unvectorize_density(vec: np.ndarray) -> np.ndarray:
    """Inverse of :func:`vectorize_density`."""
    vec = np.asarray(vec, dtype=complex)
    dim = int(round(np.sqrt(vec.size)))
    if dim * dim != vec.size:
        raise DimensionError(f"vector of length {vec.size} is not a vec(rho)")
    return vec.reshape(dim, dim, order="F")


class LindbladPropagator:
    """Cached fixed-step propagator ``exp(L dt)`` for piecewise-constant drives.

    Args:
        drift_hamiltonian: time-independent part of H.
        collapse_ops: jump operators with rates absorbed.
        dt: step duration.
        drive_op: optional Hermitian operator whose coefficient changes per
            step (e.g. a displacement drive ``a + a†``); the effective
            Hamiltonian for a step with drive value ``u`` is
            ``H_drift + u * drive_op``.
        cache_size: number of distinct drive values whose propagators are
            memoised (reservoir inputs are often quantised).
    """

    def __init__(
        self,
        drift_hamiltonian: np.ndarray,
        collapse_ops: Sequence[np.ndarray],
        dt: float,
        drive_op: np.ndarray | None = None,
        cache_size: int = 256,
    ) -> None:
        if dt <= 0:
            raise SimulationError(f"step dt={dt} must be positive")
        self.drift = np.asarray(drift_hamiltonian, dtype=complex)
        self.collapse_ops = [np.asarray(op, dtype=complex) for op in collapse_ops]
        self.dt = float(dt)
        self.drive_op = None if drive_op is None else np.asarray(drive_op, dtype=complex)
        self._cache: dict[float, np.ndarray] = {}
        self._cache_size = int(cache_size)
        self._drift_propagator: np.ndarray | None = None

    def _propagator(self, drive: float) -> np.ndarray:
        if self.drive_op is None or drive == 0.0:
            if self._drift_propagator is None:
                gen = liouvillian(self.drift, self.collapse_ops)
                self._drift_propagator = expm(gen * self.dt)
            return self._drift_propagator
        key = float(drive)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ham = self.drift + drive * self.drive_op
        prop = expm(liouvillian(ham, self.collapse_ops) * self.dt)
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = prop
        return prop

    def step(self, rho: np.ndarray, drive: float = 0.0) -> np.ndarray:
        """Advance ``rho`` by one step under drive value ``drive``."""
        vec = vectorize_density(rho)
        out = self._propagator(drive) @ vec
        rho_out = unvectorize_density(out)
        # Renormalise against accumulated round-off; the generator is TP so
        # the trace drift is numerical only.
        trace = np.real(np.trace(rho_out))
        if trace <= 0:
            raise SimulationError("state trace collapsed during Lindblad step")
        return rho_out / trace

    def run(
        self, rho: np.ndarray, drives: Sequence[float]
    ) -> list[np.ndarray]:
        """Evolve through a drive sequence; returns the state after each step."""
        states = []
        current = np.asarray(rho, dtype=complex)
        for u in drives:
            current = self.step(current, float(u))
            states.append(current)
        return states


def evolve_lindblad(
    rho: np.ndarray,
    hamiltonian: np.ndarray,
    collapse_ops: Sequence[np.ndarray],
    total_time: float,
    n_steps: int = 1,
) -> np.ndarray:
    """One-shot Lindblad evolution for a time-independent generator."""
    if total_time < 0:
        raise SimulationError("evolution time must be >= 0")
    if n_steps < 1:
        raise SimulationError("need at least one step")
    prop = LindbladPropagator(hamiltonian, collapse_ops, total_time / n_steps)
    current = np.asarray(rho, dtype=complex)
    for _ in range(n_steps):
        current = prop.step(current)
    return current
