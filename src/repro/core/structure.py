"""Gate-structure taxonomy for the fast-path simulation engine.

Most of the paper's native gate set is *structured*: Weyl ``Z``, SNAP,
self/cross-Kerr and controlled-phase are **diagonal** in the computational
basis; Weyl ``X``, CSUM and the NDAR level relabellings are (generalised)
**permutations** — at most one nonzero entry per row and column.  A dense
``tensordot`` contraction costs ``O(D * d_gate)`` for register dimension
``D``; a diagonal gate needs only an ``O(D)`` elementwise multiply and a
permutation only an ``O(D)`` gather, with no reshaping of the operator.

:func:`classify_gate` detects the structure of a matrix *exactly* (by its
zero pattern, no tolerance rounding), so the fast paths are guaranteed to
reproduce the dense reference bit-for-bit up to floating-point summation
of exact zeros.  Classification is ``O(d^2)`` — negligible next to even a
single contraction — and is cached per :class:`~repro.core.circuit.Instruction`
so repeated Trotter steps classify each gate once.

Taxonomy (``GateStructure.kind``):

* ``"diagonal"`` — ``matrix == diag(diag)``; applied as a broadcast multiply.
* ``"permutation"`` — one nonzero per row/column (monomial matrix, covering
  pure permutations and phase-decorated ones like ``X^a Z^b``); applied as
  a row gather plus, when needed, a scale by the nonzero values.
* ``"dense"`` — everything else; applied by matrix contraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GateStructure", "classify_gate", "DIAGONAL", "PERMUTATION", "DENSE"]

DIAGONAL = "diagonal"
PERMUTATION = "permutation"
DENSE = "dense"


@dataclass(frozen=True, eq=False)
class GateStructure:
    """Structural classification of a gate matrix.

    Attributes:
        kind: one of ``"diagonal"``, ``"permutation"``, ``"dense"``.
        matrix: the classified matrix (dense fallback and reference).
        diag: for ``diagonal`` — the diagonal entries, shape ``(d,)``.
        source: for ``permutation`` — ``source[r]`` is the column holding
            row ``r``'s single nonzero, so ``out[r] = values[r] * in[source[r]]``.
        values: for ``permutation`` — the nonzero entry of each row, or
            ``None`` when every entry is exactly ``1`` (pure permutation,
            no multiply needed).
        plans: per-``(dims, targets)`` cache of precomputed application
            plans (broadcast diagonals, flat gather maps, reshaped gate
            tensors) filled lazily by the statevector kernels — this is the
            gate-tensor cache that lets repeated Trotter steps skip all
            re-reshaping.
    """

    kind: str
    matrix: np.ndarray
    diag: np.ndarray | None = None
    source: np.ndarray | None = None
    values: np.ndarray | None = None
    plans: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def dim(self) -> int:
        """Dimension of the classified operator."""
        return self.matrix.shape[0]


def classify_gate(matrix: np.ndarray) -> GateStructure:
    """Classify a square matrix into the fast-path taxonomy.

    Detection is purely structural (exact zero pattern), so a diagonal
    matrix with a tiny off-diagonal entry is honestly classified ``dense``
    and fast paths never perturb results.

    Args:
        matrix: square complex matrix.

    Returns:
        A :class:`GateStructure`; ``kind == "dense"`` for anything without
        exploitable structure (including non-square input).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return GateStructure(kind=DENSE, matrix=matrix)
    d = matrix.shape[0]
    nonzero = matrix != 0
    nnz_per_col = nonzero.sum(axis=0)
    nnz_per_row = nonzero.sum(axis=1)
    # Diagonal: nothing off the main diagonal (zero diagonal entries allowed:
    # projectors / non-unitary diagonal Kraus operators still qualify).
    off = matrix.copy()
    np.fill_diagonal(off, 0)
    if not off.any():
        return GateStructure(kind=DIAGONAL, matrix=matrix, diag=np.ascontiguousarray(np.diagonal(matrix)))
    # Generalised permutation: exactly one nonzero per row and per column.
    if np.all(nnz_per_col == 1) and np.all(nnz_per_row == 1):
        source = nonzero.argmax(axis=1).astype(np.intp)
        values = np.ascontiguousarray(matrix[np.arange(d), source])
        if np.all(values == 1):
            values = None
        return GateStructure(
            kind=PERMUTATION, matrix=matrix, source=source, values=values
        )
    return GateStructure(kind=DENSE, matrix=matrix)
