"""Exception hierarchy for the :mod:`repro` toolkit.

All library errors derive from :class:`ReproError` so callers can catch a
single type at the API boundary while still discriminating on subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolkit."""


class DimensionError(ReproError, ValueError):
    """A qudit dimension or register shape is invalid or inconsistent."""


class CircuitError(ReproError, ValueError):
    """A circuit is malformed (bad wire index, dimension mismatch, ...)."""


class SimulationError(ReproError, RuntimeError):
    """A simulator could not complete (non-physical state, overflow, ...)."""


class SynthesisError(ReproError, RuntimeError):
    """Gate synthesis failed to reach the requested tolerance."""


class CompilationError(ReproError, RuntimeError):
    """A transpiler pass could not produce a valid output circuit."""


class DeviceError(ReproError, ValueError):
    """A hardware model is misconfigured or an operation is unsupported."""
