from setuptools import find_packages, setup

setup(
    name="repro-qudit",
    version="0.5.0",
    description=(
        "Qudit simulation stack reproducing conf_dsn_VenturelliGKZ25: "
        "dense/trajectory/MPS/LPDO backends, campaign orchestration, "
        "and the paper's sQED / QAOA / reservoir workloads"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: ship the inline annotations to downstream type checkers.
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.11",
    install_requires=[
        "numpy>=1.26",
        "scipy>=1.11",
        "networkx>=3.0",
    ],
    extras_require={
        # Everything the test suite (tier-1 + hypothesis properties)
        # needs beyond the runtime deps.  CI installs `.[test]` via
        # requirements-ci.txt, which is also the pip cache key.
        "test": [
            "pytest>=8",
            "hypothesis>=6",
        ],
        # The lint job's toolchain (kept separate: linting does not need
        # the scientific stack).
        "lint": [
            "ruff>=0.4",
        ],
    },
)
