#!/usr/bin/env python
"""QML application: Table I row 3 — reservoir computing with 81 neurons.

Runs the two-oscillator quantum reservoir on NARMA-2 time-series
prediction, compares with echo-state networks of increasing size
(claim C5), demonstrates the shot-noise overhead (claim C6), and finishes
with reservoir-processing state tomography (ref [28]).

Run:  python examples/reservoir_prediction.py
"""

from repro.reservoir import (
    EchoStateNetwork,
    QuantumReservoir,
    ReservoirTomograph,
    RidgeReadout,
    narma_task,
    shot_noise_sweep,
    train_test_split,
)


def prediction_demo() -> None:
    task = narma_task(500, order=2, seed=0)
    reservoir = QuantumReservoir()
    print(f"=== NARMA-2 with a {reservoir.effective_neurons()}-neuron quantum reservoir ===")
    features = reservoir.run(task.inputs)
    f_tr, y_tr, f_te, y_te = train_test_split(features, task.targets, washout=30)
    quantum_nmse = RidgeReadout(1e-8).fit(f_tr, y_tr).score_nmse(f_te, y_te)
    print(f"quantum reservoir (2 oscillators): NMSE = {quantum_nmse:.4f}")

    print("\nclassical echo-state-network size sweep:")
    for size in (5, 10, 20, 40, 81):
        esn = EchoStateNetwork(size, seed=1)
        states = esn.run(task.inputs)
        f_tr, y_tr, f_te, y_te = train_test_split(states, task.targets, washout=30)
        score = RidgeReadout(1e-8).fit(f_tr, y_tr).score_nmse(f_te, y_te)
        marker = "  <- matches quantum" if score <= quantum_nmse else ""
        print(f"  ESN n={size:>3}: NMSE = {score:.4f}{marker}")

    print("\n=== shot-noise overhead (Table I main challenge) ===")
    for point in shot_noise_sweep(features, task.targets, [30, 300, 3000, 30000], seed=0):
        label = "exact" if point.shots == 0 else f"{point.shots:>5} shots"
        print(f"  {label}: NMSE = {point.nmse:.4f}")


def tomography_demo() -> None:
    print("\n=== reservoir-processing tomography (ref [28]) ===")
    for n_train in (10, 30, 100):
        tomograph = ReservoirTomograph(dim=4, seed=0).train(n_training_states=n_train)
        fidelity = tomograph.evaluate(n_test_states=15)
        print(f"  {n_train:>3} training states: mean reconstruction fidelity {fidelity:.4f}")
    noisy = ReservoirTomograph(dim=4, seed=0).train(n_training_states=100, shots=500)
    print(f"  shot-limited (500/probe)  : {noisy.evaluate(15, shots=500):.4f}")


if __name__ == "__main__":
    prediction_demo()
    tomography_demo()
