#!/usr/bin/env python
"""Engineering deep-dive: the CSUM challenge and gate synthesis.

Table I names CSUM synthesis the main challenge for two of the three
applications.  This example walks the compilation stack:

1. the exact Fourier route CSUM = (I x F†) CPHASE (I x F);
2. its cost and fidelity on co-located vs adjacent cavity modes;
3. variational SNAP+displacement synthesis of single-qudit gates;
4. the exact Givens fallback and the two-qudit classification;
5. the roadmap device's capacity claim.

Run:  python examples/csum_synthesis.py
"""

import numpy as np

from repro.compile.synthesis import (
    csum_circuit,
    csum_cost,
    decompose_unitary,
    synthesize_two_qudit,
    synthesize_unitary,
)
from repro.core.gates import csum, fourier, qudit_complete_mixer
from repro.hardware import linear_cavity_array, roadmap_summary


def fourier_route() -> None:
    print("=== CSUM via the Fourier route ===")
    d = 4
    qc = csum_circuit(d)
    err = np.abs(qc.to_unitary() - csum(d)).max()
    print(f"d={d}: ops {qc.count_ops()}, max reconstruction error {err:.2e}")


def device_cost() -> None:
    print("\n=== CSUM cost: co-located vs adjacent qumodes ===")
    device = linear_cavity_array(3, 2, 4)
    for pair, label in [((0, 1), "co-located"), ((1, 2), "adjacent")]:
        cost = csum_cost(device, *pair)
        print(
            f"  {label:<11}: {cost.n_snap} SNAP + {cost.n_disp} disp + "
            f"{cost.n_cphase} cphase, {cost.duration * 1e6:.1f} us, "
            f"fidelity {cost.fidelity:.4f}"
        )


def snap_displacement() -> None:
    print("\n=== SNAP+displacement synthesis of QAOA mixers ===")
    for d in (2, 3, 4):
        result = synthesize_unitary(
            qudit_complete_mixer(d, 0.7), seed=0, max_restarts=3, maxiter=300
        )
        print(
            f"  d={d}: infidelity {result.infidelity:.2e} with "
            f"{result.sequence.n_layers} SNAP layers"
        )
    print("(d up to 8, >99% fidelity: benchmarks/bench_synthesis.py)")


def constructive_routes() -> None:
    print("\n=== constructive synthesis (never fails) ===")
    dec = decompose_unitary(fourier(5))
    print(f"  Fourier(5) -> {dec.n_rotations} Givens rotations + 1 SNAP layer")
    syn = synthesize_two_qudit(csum(3), 3, 3)
    print(
        f"  CSUM(3) two-qudit classification: {syn.n_rotations} rotations, "
        f"{syn.n_cross} cross, entangling cost {syn.entangling_cost()}"
    )


def roadmap() -> None:
    print("\n=== forecast device capacity (claim C7) ===")
    summary = roadmap_summary()
    print(
        f"  {summary.n_cavities} cavities x "
        f"{summary.n_modes // summary.n_cavities} modes, d={summary.dim_per_mode}: "
        f"dim = 10^{summary.hilbert_dimension_log10:.0f} "
        f"= {summary.qubit_equivalent:.1f} qubit equivalents "
        f"(exceeds 100: {summary.exceeds_100_qubits})"
    )


if __name__ == "__main__":
    fourier_route()
    device_cost()
    snap_displacement()
    constructive_routes()
    roadmap()
