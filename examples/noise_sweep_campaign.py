#!/usr/bin/env python
"""sQED damage-vs-noise curve as one parallel, cached campaign.

The encoding noise study (claim C1) scores trajectory damage at many
depolarising strengths.  Instead of a serial Python loop, this example
declares the whole sweep as a :mod:`repro.exec` campaign:

* the epsilon axis is a declarative sweep (every point a plain dict);
* every stage shares one persistent :class:`repro.exec.CampaignExecutor`
  — the worker pool is forked once and reused by the sweep, the
  streamed consumption, and every bisection probe;
* each point's backend is chosen by the ``get_backend("auto")`` cost
  model (density matrix while ``D^2`` fits, LPDO beyond);
* results stream back in point order as they finish, and are
  content-hashed into an on-disk cache, so re-running this script — or
  running the threshold bisection afterwards — recomputes nothing.

Run:  PYTHONPATH=src python examples/noise_sweep_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.exec import Campaign, CampaignExecutor, zip_sweep
from repro.sqed.noise_study import damage_campaign, noise_threshold_campaign

CACHE_DIR = Path(tempfile.gettempdir()) / "repro-noise-sweep-cache"


def main() -> None:
    epsilons = [float(e) for e in np.geomspace(3e-4, 0.3, 16)]
    spec = dict(
        n_sites=3,
        spin=1,
        t_total=2.0,
        n_steps=4,
        method="auto",  # cost model picks the engine per register
    )

    campaign = Campaign(
        task="repro.sqed.noise_study:damage_task",
        sweep=zip_sweep(epsilon=epsilons),
        name="noise-sweep",
        base_params=spec,
        seed=0,
    )

    # One warm pool serves the streamed sweep, the bisection probes, and
    # the replay below — fork cost is paid exactly once.
    with CampaignExecutor(4, cache=CACHE_DIR) as executor:
        print("=== damage-vs-loss campaign (16 points, streamed) ===")
        handle = executor.submit(campaign)
        for eps, damage in zip(epsilons, handle.stream_results()):
            bar = "#" * int(min(damage, 0.6) * 80)
            print(f"  eps={eps:8.5f}  damage={damage:7.4f}  {bar}")
        result = handle.result()
        print(
            f"executed {result.computed} points, served {result.cache_hits} "
            f"from cache, in {result.duration_s:.2f} s"
        )

        print("\n=== threshold bisection on the same pool + cache ===")
        threshold = noise_threshold_campaign(
            damage_tol=0.1,
            bisection_steps=8,
            executor=executor,
            cache=CACHE_DIR,
            seed=0,
            **spec,
        )
        print(f"tolerable per-gate error: eps* = {threshold:.5f}")

        print("\n=== rerun: everything is a cache hit ===")
        replay = damage_campaign(
            epsilons, executor=executor, cache=CACHE_DIR, seed=0, **spec
        )
        print(
            f"served {replay.cache_hits}/{len(replay)} points from cache in "
            f"{replay.duration_s:.3f} s (cache: {CACHE_DIR})"
        )


if __name__ == "__main__":
    main()
