#!/usr/bin/env python
"""Quickstart: qudit circuits, noisy simulation, and device compilation.

Builds a two-qutrit entangled state, simulates it exactly and under a
device-derived noise model, then transpiles a small workload onto a
multi-cavity QPU with the noise-aware mapper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DensityMatrix, QuditCircuit, Statevector
from repro.compile import transpile
from repro.hardware import DeviceNoiseModel, linear_cavity_array


def entangle_two_qutrits() -> None:
    """GHZ-style correlations from Fourier + CSUM."""
    print("=== two-qutrit entanglement ===")
    qc = QuditCircuit([3, 3], name="qutrit-bell")
    qc.fourier(0)
    qc.csum(0, 1)
    state = Statevector.zero([3, 3]).evolve(qc)
    print("circuit ops:", qc.count_ops())
    counts = state.sample(600, rng=np.random.default_rng(0))
    print("samples (perfectly correlated):", dict(sorted(counts.items())))


def noisy_simulation() -> None:
    """The same circuit under a cavity-device noise model."""
    print("\n=== noisy simulation on a device model ===")
    device = linear_cavity_array(2, 2, 3, coherence_spread=0.3, seed=1)
    qc = QuditCircuit([3, 3])
    qc.fourier(0)
    qc.csum(0, 1)
    noise = DeviceNoiseModel(device)
    noisy = noise.apply_to_circuit(qc, layout=[0, 1])
    rho = DensityMatrix.zero([3, 3]).evolve(noisy)
    ideal = Statevector.zero([3, 3]).evolve(qc)
    print(f"purity            : {rho.purity():.4f}")
    print(f"fidelity to ideal : {rho.fidelity_with_pure(ideal):.4f}")
    print(f"first-order est.  : {noise.circuit_fidelity_estimate(qc, [0, 1]):.4f}")


def compile_to_device() -> None:
    """Noise-aware mapping + routing of a 5-qutrit chain workload."""
    print("\n=== transpilation ===")
    device = linear_cavity_array(3, 2, 3, coherence_spread=0.4, seed=7)
    qc = QuditCircuit([3] * 5, name="chain")
    for wire in range(5):
        qc.fourier(wire)
    for wire in range(4):
        qc.csum(wire, wire + 1)
    result = transpile(qc, device, seed=0)
    print("layout (wire -> mode):", list(result.mapping.layout))
    print(f"estimated fidelity   : {result.mapping.fidelity:.4f}")
    print("swaps inserted       :", result.routing.n_swaps + result.routing.n_moves)
    print("resources            :", result.resources.summary())


if __name__ == "__main__":
    entangle_two_qutrits()
    noisy_simulation()
    compile_to_device()
