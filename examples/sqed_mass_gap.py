#!/usr/bin/env python
"""sQED application: mass-gap extraction and the qudit-vs-qubit noise edge.

Reproduces the paper's §II.A story on a laptop-sized rotor chain:

1. extract the U(1) rotor mass gap from real-time Trotter dynamics and
   compare it with exact diagonalisation;
2. show how noise destroys the extraction;
3. measure the per-gate error each encoding tolerates (claim C1's
   mechanism) at reduced size.

Run:  python examples/sqed_mass_gap.py
"""

from repro.sqed import (
    QubitEncoding,
    QuditEncoding,
    RotorChain,
    estimate_mass_gap,
    trajectory_damage,
)


def mass_gap_demo() -> None:
    print("=== mass gap from real-time dynamics ===")
    chain = RotorChain(n_sites=3, spin=1, g2=1.0, hopping=0.3)
    print(f"model: {chain}")
    print(f"exact gap (ED): {chain.mass_gap():.4f}")
    for epsilon in (0.0, 0.002, 0.01):
        result = estimate_mass_gap(chain, epsilon=epsilon)
        print(
            f"  eps={epsilon:<6}: estimated gap {result.gap_estimated:.4f} "
            f"(rel. err {result.relative_error:.1%})"
        )


def encoding_fragility_demo() -> None:
    print("\n=== encoding fragility (claim C1 mechanism) ===")
    chain = RotorChain(n_sites=2, spin=1, g2=1.0, hopping=0.3)
    qudit = QuditEncoding(chain)
    qubit = QubitEncoding(chain)
    print(f"qudit entangling-equivalents / Trotter step: {qudit.entangling_per_step()}")
    print(f"qubit CNOTs / Trotter step                 : {qubit.cnots_per_step()}")
    for eps in (0.005, 0.02):
        dq = trajectory_damage(qudit, eps, t_total=2.0, n_steps=5)
        db = trajectory_damage(qubit, eps, t_total=2.0, n_steps=5)
        print(f"  eps={eps}: qudit damage {dq:.4f} | qubit damage {db:.4f}")
    print("(full 10-100x threshold-ratio sweep: benchmarks/bench_encoding_noise.py)")


if __name__ == "__main__":
    mass_gap_demo()
    encoding_fragility_demo()
