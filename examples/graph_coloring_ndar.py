#!/usr/bin/env python
"""Optimization application: Table I row 2 — NDAR-QAOA 3-coloring at N = 9.

Runs the paper's optimisation campaign end to end:

1. optimise a qudit QAOA for a 9-node 3-coloring instance (one qutrit per
   node; one-hot constraints hold by construction);
2. run noisy sampling with photon loss, with and without Noise-Directed
   Adaptive Remapping;
3. scale past the mode budget with the qudit QRAC relaxation (50+ nodes on
   two simulated d=8 qudits).

Run:  python examples/graph_coloring_ndar.py
"""

from repro.qaoa import (
    greedy_coloring_cost,
    optimize_qaoa,
    random_coloring_instance,
    run_ndar,
    solve_coloring_qrac,
)


def qaoa_and_ndar() -> None:
    problem = random_coloring_instance(9, 3, degree=4, seed=11)
    print(f"instance: {problem}, optimal clashes = {problem.best_cost()}")

    print("\n=== noiseless QAOA (p = 1) ===")
    result = optimize_qaoa(problem, p=1, maxiter=100)
    print(
        f"expected clashes {result.expected_cost:.3f}, "
        f"approximation ratio {result.approximation_ratio:.3f}"
    )

    print("\n=== noisy sampling: NDAR vs vanilla ===")
    common = dict(n_rounds=4, shots=40, loss_per_layer=0.25, p=1, seed=5)
    ndar = run_ndar(problem, adaptive=True, **common)
    vanilla = run_ndar(problem, adaptive=False, **common)
    print(f"NDAR    best clashes: {ndar.best_cost} (ratio {ndar.approximation_ratio:.3f})")
    print(f"vanilla best clashes: {vanilla.best_cost} (ratio {vanilla.approximation_ratio:.3f})")
    print("NDAR mean sampled cost per round   :", [round(r.mean_sampled_cost, 2) for r in ndar.rounds])
    print("vanilla mean sampled cost per round:", [round(r.mean_sampled_cost, 2) for r in vanilla.rounds])


def qrac_scaling() -> None:
    print("\n=== QRAC relaxation: 54 nodes on 2 simulated d=8 qudits ===")
    big = random_coloring_instance(54, 3, degree=4, seed=3)
    result = solve_coloring_qrac(big, qudit_dim=8, n_restarts=2, seed=0, best_cost=0)
    greedy = min(greedy_coloring_cost(big, seed=s) for s in range(5))
    print(
        f"clashes {result.clashes}/{big.n_edges} on {result.n_qudits} qudits "
        f"({result.nodes_per_qudit} nodes/qudit); greedy baseline {greedy}"
    )


if __name__ == "__main__":
    qaoa_and_ndar()
    qrac_scaling()
